// Managed object layout and accessors.
//
// Per the SSCLI model (paper §5.3): every object starts with one word that
// references its MethodTable; all instance data follows immediately. The
// GC borrows the low bits of that word during collection (mark bit,
// forwarding bit) — they are zero outside a collection.
//
// Array layout (rank-1):        [header][i64 length      ][elements...]
// Array layout (rank-n, n > 1): [header][i32 dims x rank, padded][elements]
// True multidimensional arrays are one object with one contiguous payload —
// the CLI feature the paper contrasts with Java's arrays-of-arrays (§3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/status.hpp"
#include "vm/method_table.hpp"

namespace motor::vm {

struct Object;  // opaque; always lives on a managed heap
using Obj = Object*;

inline constexpr std::size_t kObjectAlignment = 8;
inline constexpr std::size_t kHeaderBytes = 8;

inline constexpr std::uintptr_t kForwardBit = 0x1;
inline constexpr std::uintptr_t kMarkBit = 0x2;
inline constexpr std::uintptr_t kHeaderTagMask = kForwardBit | kMarkBit;

inline std::size_t align_up(std::size_t n) {
  return (n + kObjectAlignment - 1) & ~(kObjectAlignment - 1);
}

// ---- header word ----

inline std::uintptr_t& header_word(Obj obj) {
  return *reinterpret_cast<std::uintptr_t*>(obj);
}

inline const MethodTable* obj_mt(Obj obj) {
  return reinterpret_cast<const MethodTable*>(header_word(obj) &
                                              ~kHeaderTagMask);
}

inline void set_obj_mt(Obj obj, const MethodTable* mt) {
  header_word(obj) = reinterpret_cast<std::uintptr_t>(mt);
}

inline bool is_marked(Obj obj) { return (header_word(obj) & kMarkBit) != 0; }
inline void set_mark(Obj obj) { header_word(obj) |= kMarkBit; }
inline void clear_mark(Obj obj) { header_word(obj) &= ~kMarkBit; }

inline bool is_forwarded(Obj obj) {
  return (header_word(obj) & kForwardBit) != 0;
}
inline Obj forwarding_target(Obj obj) {
  return reinterpret_cast<Obj>(header_word(obj) & ~kHeaderTagMask);
}
inline void set_forwarding(Obj obj, Obj target) {
  header_word(obj) = reinterpret_cast<std::uintptr_t>(target) | kForwardBit;
}

// ---- instance data ----

inline std::byte* obj_data(Obj obj) {
  return reinterpret_cast<std::byte*>(obj) + kHeaderBytes;
}

/// Bytes occupied by the array-bounds area for rank `rank`.
inline std::size_t array_bounds_bytes(int rank) {
  return rank <= 1 ? 8 : align_up(static_cast<std::size_t>(rank) * 4);
}

inline std::int64_t array_length(Obj obj) {
  const MethodTable* mt = obj_mt(obj);
  MOTOR_CHECK(mt->is_array(), "array_length on non-array");
  if (mt->rank() <= 1) {
    std::int64_t len;
    std::memcpy(&len, obj_data(obj), sizeof len);
    return len;
  }
  std::int64_t total = 1;
  const auto* dims = reinterpret_cast<const std::int32_t*>(obj_data(obj));
  for (int d = 0; d < mt->rank(); ++d) total *= dims[d];
  return total;
}

inline std::int32_t array_dim(Obj obj, int d) {
  const MethodTable* mt = obj_mt(obj);
  MOTOR_CHECK(mt->is_array(), "array_dim on non-array");
  MOTOR_CHECK(d >= 0 && d < mt->rank(), "array_dim out of range");
  if (mt->rank() <= 1) return static_cast<std::int32_t>(array_length(obj));
  const auto* dims = reinterpret_cast<const std::int32_t*>(obj_data(obj));
  return dims[d];
}

/// First element of the contiguous payload.
inline std::byte* array_data(Obj obj) {
  const MethodTable* mt = obj_mt(obj);
  return obj_data(obj) + array_bounds_bytes(mt->rank());
}

/// Payload size in bytes (elements only).
inline std::size_t array_payload_bytes(Obj obj) {
  return static_cast<std::size_t>(array_length(obj)) *
         obj_mt(obj)->element_bytes();
}

/// Total heap footprint of the object, header included, aligned.
inline std::size_t object_total_bytes(Obj obj) {
  const MethodTable* mt = obj_mt(obj);
  if (!mt->is_array()) {
    return align_up(kHeaderBytes + mt->instance_bytes());
  }
  return align_up(kHeaderBytes + array_bounds_bytes(mt->rank()) +
                  array_payload_bytes(obj));
}

// ---- field access ----

template <typename T>
T get_field(Obj obj, std::uint32_t offset) {
  T v;
  std::memcpy(&v, obj_data(obj) + offset, sizeof v);
  return v;
}

template <typename T>
void set_field(Obj obj, std::uint32_t offset, T value) {
  std::memcpy(obj_data(obj) + offset, &value, sizeof value);
}

inline Obj get_ref_field(Obj obj, std::uint32_t offset) {
  return get_field<Obj>(obj, offset);
}
inline void set_ref_field(Obj obj, std::uint32_t offset, Obj value) {
  set_field(obj, offset, value);
}

inline Obj get_ref_element(Obj arr, std::int64_t index) {
  Obj v;
  std::memcpy(&v, array_data(arr) + static_cast<std::size_t>(index) * 8,
              sizeof v);
  return v;
}
inline void set_ref_element(Obj arr, std::int64_t index, Obj value) {
  std::memcpy(array_data(arr) + static_cast<std::size_t>(index) * 8, &value,
              sizeof value);
}

template <typename T>
T get_element(Obj arr, std::int64_t index) {
  T v;
  std::memcpy(&v, array_data(arr) + static_cast<std::size_t>(index) * sizeof(T),
              sizeof v);
  return v;
}
template <typename T>
void set_element(Obj arr, std::int64_t index, T value) {
  std::memcpy(array_data(arr) + static_cast<std::size_t>(index) * sizeof(T),
              &value, sizeof value);
}

}  // namespace motor::vm
