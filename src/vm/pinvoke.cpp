#include "vm/pinvoke.hpp"

#include "common/status.hpp"
#include "pal/clock.hpp"
#include "vm/heap.hpp"
#include "vm/vm.hpp"

namespace motor::vm {

int PInvokeTable::register_entry(std::string name, NativeFn fn) {
  entries_.push_back(Entry{std::move(name), std::move(fn)});
  return static_cast<int>(entries_.size()) - 1;
}

namespace {

/// The marshalling step both P/Invoke and JNI perform: copy every argument
/// into a transition frame (real work, proportional to arity).
std::vector<Value> marshal_args(std::span<const Value> args) {
  std::vector<Value> frame;
  frame.reserve(args.size());
  for (const Value& v : args) frame.push_back(v);
  return frame;
}

}  // namespace

Value PInvokeTable::invoke(Vm& vm, ManagedThread& thread, int index,
                           std::span<const Value> args) const {
  MOTOR_CHECK(index >= 0 && index < static_cast<int>(entries_.size()),
              "unknown P/Invoke target");
  ++calls_;
  thread.poll_gc();  // transition out of managed code is a safe point
  std::vector<Value> frame = marshal_args(args);
  if (vm.profile().pinvoke_transition_ns > 0) {
    pal::spin_for_ns(vm.profile().pinvoke_transition_ns);
  }
  Value result =
      entries_[static_cast<std::size_t>(index)].fn(vm, thread, frame);
  thread.poll_gc();
  return result;
}

Value PInvokeTable::invoke_jni(Vm& vm, ManagedThread& thread, int index,
                               std::span<const Value> args) const {
  MOTOR_CHECK(index >= 0 && index < static_cast<int>(entries_.size()),
              "unknown JNI target");
  ++calls_;
  thread.poll_gc();
  std::vector<Value> frame = marshal_args(args);
  if (vm.profile().jni_transition_ns > 0) {
    pal::spin_for_ns(vm.profile().jni_transition_ns);
  }
  // JNI pins every reference argument for the duration of the call.
  std::vector<Obj> pinned;
  for (const Value& v : frame) {
    if (v.is_ref() && v.ref != nullptr) {
      vm.heap().pin(v.ref);
      if (vm.profile().pin_extra_ns > 0) {
        pal::spin_for_ns(vm.profile().pin_extra_ns);
      }
      pinned.push_back(v.ref);
    }
  }
  Value result =
      entries_[static_cast<std::size_t>(index)].fn(vm, thread, frame);
  for (Obj obj : pinned) vm.heap().unpin(obj);
  thread.poll_gc();
  return result;
}

int PInvokeTable::find(std::string_view name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace motor::vm
