// The P/Invoke and JNI managed-to-native call mechanisms — what the
// managed-wrapper MPI baselines (Indiana bindings, mpiJava) pay on every
// operation (paper §2.2): "both JNI and P/Invoke require marshalling and
// impose security mechanisms".
//
// Structural costs are executed for real (argument marshal copies, pin
// table traffic for JNI array pinning); the host-quality residue is
// charged from the RuntimeProfile.
#pragma once

#include "vm/fcall.hpp"

namespace motor::vm {

class PInvokeTable {
 public:
  int register_entry(std::string name, NativeFn fn);

  /// P/Invoke discipline: marshal arguments into a transition frame
  /// (copies), charge the transition (security checks / stack walk), run
  /// the native body. The runtime does NOT track object pointers across
  /// the call — callers must pin buffers themselves (paper §2.3).
  Value invoke(Vm& vm, ManagedThread& thread, int index,
               std::span<const Value> args) const;

  /// JNI discipline (mpiJava baseline): same marshalling, plus automatic
  /// pin/unpin of every reference argument ("the JNI interface
  /// automatically pins and unpins objects", §2.3).
  Value invoke_jni(Vm& vm, ManagedThread& thread, int index,
                   std::span<const Value> args) const;

  [[nodiscard]] int find(std::string_view name) const;
  [[nodiscard]] std::uint64_t calls() const noexcept { return calls_; }

 private:
  struct Entry {
    std::string name;
    NativeFn fn;
  };
  std::vector<Entry> entries_;
  mutable std::uint64_t calls_ = 0;
};

}  // namespace motor::vm
