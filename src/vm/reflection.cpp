#include "vm/reflection.hpp"

namespace motor::vm {

TypeMetadata& MetadataRegistry::add_type(const std::string& name) {
  types_.push_back(TypeMetadata{name, {}, {}});
  return types_.back();
}

const TypeMetadata* MetadataRegistry::find_type(
    const std::string& type_name) const {
  for (const TypeMetadata& t : types_) {
    if (t.name == type_name) return &t;
  }
  return nullptr;
}

bool MetadataRegistry::field_has_attribute(const std::string& type_name,
                                           const std::string& field_name,
                                           const std::string& attribute) const {
  const TypeMetadata* t = find_type(type_name);
  if (t == nullptr) return false;
  for (const FieldMetadata& f : t->fields) {
    if (f.name != field_name) continue;
    for (const std::string& a : f.attributes) {
      if (a == attribute) return true;
    }
    return false;
  }
  return false;
}

bool MetadataRegistry::type_has_attribute(const std::string& type_name,
                                          const std::string& attribute) const {
  const TypeMetadata* t = find_type(type_name);
  if (t == nullptr) return false;
  for (const std::string& a : t->attributes) {
    if (a == attribute) return true;
  }
  return false;
}

std::vector<std::string> MetadataRegistry::field_attributes(
    const std::string& type_name, const std::string& field_name) const {
  const TypeMetadata* t = find_type(type_name);
  if (t == nullptr) return {};
  for (const FieldMetadata& f : t->fields) {
    if (f.name == field_name) return f.attributes;
  }
  return {};
}

}  // namespace motor::vm
