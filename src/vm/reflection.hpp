// Type metadata and reflection — the *slow* path to attribute information.
//
// The SSCLI keeps full type metadata besides the optimized runtime
// structures; reflection queries walk it. The paper's serializer
// deliberately avoids this path: "Introspecting type fields for a
// Transportable attribute is possible using the reflection library.
// However, this is a relatively slow operation because it accesses type
// metadata. Instead, we implemented a Transportable bit on the FieldDesc
// structure." (§7.5)
//
// This registry is faithful to that cost asymmetry: attribute lookups do
// string-keyed scans over heap-allocated metadata records, the way
// metadata-token resolution behaves, so the FieldDesc-bit ablation
// (bench/ablation_visited + tests) measures a real difference.
#pragma once

#include <string>
#include <vector>

namespace motor::vm {

struct FieldMetadata {
  std::string name;
  std::string declared_type;            // textual type signature
  std::vector<std::string> attributes;  // custom attribute names
};

struct TypeMetadata {
  std::string name;
  std::vector<std::string> attributes;
  std::vector<FieldMetadata> fields;
};

class MetadataRegistry {
 public:
  /// Record a type (called by TypeSystem at definition time).
  TypeMetadata& add_type(const std::string& name);

  /// Reflection query: does `type_name.field_name` carry `attribute`?
  /// Deliberately metadata-shaped: linear scans over string-keyed records.
  [[nodiscard]] bool field_has_attribute(const std::string& type_name,
                                         const std::string& field_name,
                                         const std::string& attribute) const;

  [[nodiscard]] bool type_has_attribute(const std::string& type_name,
                                        const std::string& attribute) const;

  /// All attributes on a field (reflection's GetCustomAttributes analog).
  [[nodiscard]] std::vector<std::string> field_attributes(
      const std::string& type_name, const std::string& field_name) const;

  [[nodiscard]] const TypeMetadata* find_type(
      const std::string& type_name) const;

  [[nodiscard]] std::size_t type_count() const noexcept {
    return types_.size();
  }

 private:
  std::vector<TypeMetadata> types_;
};

}  // namespace motor::vm
