#include "vm/runtime_profile.hpp"

namespace motor::vm {

// Calibration note (see EXPERIMENTS.md): the paper's Figure 9 shows, on a
// 1.7 GHz Pentium M, Motor beating the SSCLI-hosted Indiana bindings by
// ~16% at peak / ~8% mean, with the managed-to-native transition cost the
// dominant fixed term at small buffers. The transition numbers below were
// chosen so those *relative* gaps reproduce on a modern core; the published
// P/Invoke-vs-FCall literature of the era puts the transition at one to a
// few microseconds, which these values respect.

RuntimeProfile RuntimeProfile::sscli() {
  RuntimeProfile p;
  p.name = "sscli";
  p.pinvoke_transition_ns = 1600;
  p.jni_transition_ns = 0;
  p.fcall_transition_ns = 40;
  p.serializer_cost_factor = 3.0;  // Rotor's managed serializer is slow
  p.pin_extra_ns = 120;
  return p;
}

RuntimeProfile RuntimeProfile::commercial_net() {
  RuntimeProfile p;
  p.name = "dotnet";
  p.pinvoke_transition_ns = 1100;
  p.jni_transition_ns = 0;
  p.fcall_transition_ns = 25;
  p.serializer_cost_factor = 1.4;
  p.pin_extra_ns = 60;
  return p;
}

RuntimeProfile RuntimeProfile::sun_jvm() {
  RuntimeProfile p;
  p.name = "sun-jvm";
  p.pinvoke_transition_ns = 0;
  p.jni_transition_ns = 2200;
  p.fcall_transition_ns = 0;
  p.serializer_cost_factor = 2.2;
  p.pin_extra_ns = 90;  // JNI Get*ArrayElements pin/unpin
  return p;
}

RuntimeProfile RuntimeProfile::uncosted() {
  RuntimeProfile p;
  p.name = "uncosted";
  return p;
}

}  // namespace motor::vm
