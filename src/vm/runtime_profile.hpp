// Runtime cost profiles.
//
// The paper benchmarks the same wrapper bindings hosted by two CLIs
// (commercial .NET v1.1 vs the SSCLI "Rotor") and by the Sun JVM. We cannot
// run three closed-source runtimes, so the *host-quality* differences are
// modelled as explicit per-call/per-byte costs charged with calibrated CPU
// spins, while everything structural (marshalling copies, pin-table
// traffic, serializer algorithms, GC behaviour) is executed for real.
// Calibration rationale lives in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>

namespace motor::vm {

struct RuntimeProfile {
  std::string name;

  /// Managed-to-native transition charged per P/Invoke call: argument
  /// marshalling bookkeeping plus the security/stack-walk checks the CLI
  /// performs on unmanaged transitions.
  std::uint64_t pinvoke_transition_ns = 0;

  /// Per-call JNI transition (Java baseline): JNIEnv indirection, handle
  /// table churn, argument conversion.
  std::uint64_t jni_transition_ns = 0;

  /// FCall transition: internally trusted, no marshalling, no security
  /// checks (paper §5.1) — effectively a function call.
  std::uint64_t fcall_transition_ns = 0;

  /// Host-quality multiplier on the *standard* runtime serializer
  /// (BinaryFormatter / java.io.ObjectOutputStream analogs). 1.0 = this
  /// machine's native speed; > 1 models a slower managed implementation.
  double serializer_cost_factor = 1.0;

  /// Extra per pin/unpin pair beyond the real pin-table work (the paper's
  /// footnote 4: fastchecked SSCLI builds pin more expensively than free
  /// builds; hosted CLRs differ too).
  std::uint64_t pin_extra_ns = 0;

  /// Rotor / SSCLI free build: cheap-ish pinning, pricier P/Invoke, slow
  /// managed serializer (the paper notes the SSCLI serializer is visibly
  /// slower than .NET's in Figure 10).
  static RuntimeProfile sscli();

  /// Commercial .NET v1.1: faster P/Invoke and serializer than Rotor.
  static RuntimeProfile commercial_net();

  /// Sun JDK 1.5 hosting mpiJava: JNI transitions and the standard Java
  /// serialization machinery.
  static RuntimeProfile sun_jvm();

  /// Zero-overhead profile for unit tests that measure structure, not time.
  static RuntimeProfile uncosted();
};

}  // namespace motor::vm
