#include "vm/safepoint.hpp"

namespace motor::vm {

void SafepointController::register_thread() {
  std::lock_guard lk(mu_);
  ++registered_;
}

void SafepointController::unregister_thread() {
  std::lock_guard lk(mu_);
  --registered_;
  cv_.notify_all();  // a departing thread may unblock a waiting collector
}

void SafepointController::poll() {
  poll_count_.fetch_add(1, std::memory_order_relaxed);
  if (!gc_pending_.load(std::memory_order_acquire)) return;

  std::unique_lock lk(mu_);
  if (!gc_pending_.load(std::memory_order_acquire)) return;
  ++parked_;
  cv_.notify_all();  // tell the collector we reached the safe state
  cv_.wait(lk, [&] { return !gc_pending_.load(std::memory_order_acquire); });
  --parked_;
}

void SafepointController::enter_native() {
  std::lock_guard lk(mu_);
  ++in_native_;
  cv_.notify_all();  // may unblock a collector waiting for this thread
}

void SafepointController::leave_native() {
  std::unique_lock lk(mu_);
  // Cannot re-enter managed code while a collection is underway.
  cv_.wait(lk, [&] { return !gc_pending_.load(std::memory_order_acquire); });
  --in_native_;
}

void SafepointController::run_stop_the_world(
    const std::function<void()>& stop_the_world_work) {
  std::unique_lock lk(mu_);
  // One collection at a time; a second requester waits for the first to
  // finish and then runs its own (the world is already warm by then).
  // While queued, the requester holds no unprotected heap state — it
  // counts as parked, or the active collector would wait on it forever.
  ++parked_;
  cv_.notify_all();
  cv_.wait(lk, [&] { return !collecting_; });
  --parked_;
  collecting_ = true;
  gc_pending_.store(true, std::memory_order_release);
  cv_.wait(lk, [&] { return parked_ + in_native_ >= registered_ - 1; });

  stop_the_world_work();

  gc_pending_.store(false, std::memory_order_release);
  collecting_ = false;
  cv_.notify_all();
}

int SafepointController::registered_threads() const {
  std::lock_guard lk(mu_);
  return registered_;
}

}  // namespace motor::vm
