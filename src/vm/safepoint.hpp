// Stop-the-world coordination via cooperative safepoint polling.
//
// Managed execution (interpreter back-edges, FCall entry/exit, and the
// polling-waits the Motor port substitutes for blocking system calls,
// paper §7.1/§7.4) calls poll(). When a collection is requested, polling
// threads park until it finishes; the collecting thread proceeds once
// every other registered thread is parked.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

namespace motor::vm {

class SafepointController {
 public:
  /// A thread entering managed execution must register; see ManagedThread.
  void register_thread();
  void unregister_thread();

  /// The GC yield point. Fast path: one relaxed atomic load.
  void poll();

  /// Preemptive-mode transitions: a thread inside an opaque native call
  /// (P/Invoke, JNI) counts as stopped — collections proceed without it,
  /// which is exactly why wrapper bindings must pin their buffers
  /// (paper §2.3). leave_native blocks while a collection is running.
  void enter_native();
  void leave_native();

  /// Run `stop_the_world_work` with every other registered thread parked
  /// at a safepoint. The calling thread counts as stopped.
  void run_stop_the_world(const std::function<void()>& stop_the_world_work);

  [[nodiscard]] int registered_threads() const;
  [[nodiscard]] std::uint64_t polls() const noexcept {
    return poll_count_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> gc_pending_{false};
  std::atomic<std::uint64_t> poll_count_{0};
  int registered_ = 0;
  int parked_ = 0;
  int in_native_ = 0;
  bool collecting_ = false;
};

/// RAII preemptive-mode region around a native (P/Invoke-style) call.
class NativeRegion {
 public:
  explicit NativeRegion(SafepointController& sp) : sp_(sp) {
    sp_.enter_native();
  }
  ~NativeRegion() { sp_.leave_native(); }
  NativeRegion(const NativeRegion&) = delete;
  NativeRegion& operator=(const NativeRegion&) = delete;

 private:
  SafepointController& sp_;
};

}  // namespace motor::vm
