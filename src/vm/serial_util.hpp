// Small shared helpers for the serializer implementations.
#pragma once

#include <string>

#include "common/buffer.hpp"

namespace motor::vm::detail {

inline void write_string(ByteBuffer& out, std::string_view s) {
  out.put_u16(static_cast<std::uint16_t>(s.size()));
  out.append_raw(s.data(), s.size());
}

inline Status read_string(ByteBuffer& in, std::string& out) {
  std::uint16_t len = 0;
  MOTOR_RETURN_IF_ERROR(in.get(len));
  out.resize(len);
  return in.read(as_writable_bytes_of(out.data(), len));
}

}  // namespace motor::vm::detail
