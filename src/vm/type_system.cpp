#include "vm/type_system.hpp"

#include "common/status.hpp"

namespace motor::vm {

namespace {

std::size_t align_to(std::size_t offset, std::size_t alignment) {
  return (offset + alignment - 1) & ~(alignment - 1);
}

std::string array_type_name(std::string_view element, int rank) {
  std::string name(element);
  name += "[";
  for (int i = 1; i < rank; ++i) name += ",";
  name += "]";
  return name;
}

}  // namespace

TypeSystem::TypeSystem() {
  auto root = std::make_unique<MethodTable>("System.Object", next_id(),
                                            std::vector<FieldDesc>{}, 0u,
                                            /*transportable_class=*/false);
  metadata_.add_type("System.Object");
  object_type_ = register_type(std::move(root));
}

const MethodTable* TypeSystem::register_type(std::unique_ptr<MethodTable> mt) {
  std::lock_guard lk(mu_);
  const MethodTable* raw = mt.get();
  MOTOR_CHECK(by_name_.emplace(mt->name(), raw).second,
              "duplicate type name: " + mt->name());
  types_.push_back(std::move(mt));
  return raw;
}

ClassBuilder TypeSystem::define_class(std::string name) {
  return ClassBuilder(*this, std::move(name));
}

const MethodTable* TypeSystem::primitive_array(ElementKind kind, int rank) {
  MOTOR_CHECK(kind != ElementKind::kObjectRef,
              "use ref_array for reference arrays");
  const std::string name =
      array_type_name(element_kind_name(kind), rank);
  if (const MethodTable* existing = find(name)) return existing;
  auto mt = std::make_unique<MethodTable>(name, next_id(), kind, rank);
  metadata_.add_type(name);
  return register_type(std::move(mt));
}

const MethodTable* TypeSystem::ref_array(const MethodTable* element,
                                         int rank) {
  const std::string name = array_type_name(element->name(), rank);
  if (const MethodTable* existing = find(name)) return existing;
  auto mt = std::make_unique<MethodTable>(name, next_id(), element, rank);
  metadata_.add_type(name);
  return register_type(std::move(mt));
}

const MethodTable* TypeSystem::find(const std::string& name) const {
  std::lock_guard lk(mu_);
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

const MethodTable* TypeSystem::by_id(std::uint32_t type_id) const {
  std::lock_guard lk(mu_);
  for (const auto& t : types_) {
    if (t->type_id() == type_id) return t.get();
  }
  return nullptr;
}

void TypeSystem::for_each_type(const std::function<void(MethodTable*)>& fn) {
  std::lock_guard lk(mu_);
  for (const auto& t : types_) fn(t.get());
}

std::size_t TypeSystem::type_count() const {
  std::lock_guard lk(mu_);
  return types_.size();
}

ClassBuilder& ClassBuilder::field(std::string name, ElementKind kind,
                                  bool transportable) {
  MOTOR_CHECK(kind != ElementKind::kObjectRef,
              "use ref_field for reference fields");
  pending_.push_back({std::move(name), kind, nullptr, transportable});
  return *this;
}

ClassBuilder& ClassBuilder::ref_field(std::string name,
                                      const MethodTable* type,
                                      bool transportable) {
  pending_.push_back(
      {std::move(name), ElementKind::kObjectRef, type, transportable});
  return *this;
}

ClassBuilder& ClassBuilder::transportable() {
  class_transportable_ = true;
  class_attributes_.push_back("Transportable");
  return *this;
}

ClassBuilder& ClassBuilder::attribute(std::string name) {
  class_attributes_.push_back(std::move(name));
  return *this;
}

const MethodTable* ClassBuilder::build() {
  std::vector<FieldDesc> fields;
  fields.reserve(pending_.size());
  std::size_t offset = 0;
  for (const PendingField& p : pending_) {
    const std::size_t sz = element_size(p.kind);
    offset = align_to(offset, sz);
    fields.emplace_back(p.name, p.kind, static_cast<std::uint32_t>(offset),
                        p.type, p.transportable);
    offset += sz;
  }
  const auto instance_bytes =
      static_cast<std::uint32_t>(align_to(offset, 8));

  // Populate the slow metadata mirror reflection reads.
  TypeMetadata& meta = ts_.metadata_.add_type(name_);
  meta.attributes = class_attributes_;
  for (const PendingField& p : pending_) {
    FieldMetadata fm;
    fm.name = p.name;
    fm.declared_type = p.type != nullptr ? p.type->name()
                                         : std::string(element_kind_name(p.kind));
    if (p.transportable) fm.attributes.push_back("Transportable");
    meta.fields.push_back(std::move(fm));
  }

  auto mt = std::make_unique<MethodTable>(name_, ts_.next_id(),
                                          std::move(fields), instance_bytes,
                                          class_transportable_);
  return ts_.register_type(std::move(mt));
}

}  // namespace motor::vm
