// The common type system: a registry of MethodTables plus the class
// builder that assigns field layout and Transportable bits, and populates
// the (slow) metadata registry reflection reads.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "vm/method_table.hpp"
#include "vm/reflection.hpp"

namespace motor::vm {

class TypeSystem;

/// Fluent class-type builder. Offsets are assigned in declaration order
/// with natural alignment. `transportable` on a field sets the FieldDesc
/// bit *and* records the [Transportable] attribute in metadata, matching
/// how the Motor runtime mirrors the attribute at type-load time (§7.5).
class ClassBuilder {
 public:
  ClassBuilder& field(std::string name, ElementKind kind,
                      bool transportable = false);
  ClassBuilder& ref_field(std::string name, const MethodTable* type,
                          bool transportable = false);
  /// Class-level [Transportable] attribute.
  ClassBuilder& transportable();
  /// Arbitrary extra custom attribute, metadata-only (reflection sees it;
  /// the runtime model does not).
  ClassBuilder& attribute(std::string name);

  const MethodTable* build();

 private:
  friend class TypeSystem;
  ClassBuilder(TypeSystem& ts, std::string name) : ts_(ts), name_(std::move(name)) {}

  struct PendingField {
    std::string name;
    ElementKind kind;
    const MethodTable* type;
    bool transportable;
  };

  TypeSystem& ts_;
  std::string name_;
  std::vector<PendingField> pending_;
  std::vector<std::string> class_attributes_;
  bool class_transportable_ = false;
};

class TypeSystem {
 public:
  TypeSystem();

  TypeSystem(const TypeSystem&) = delete;
  TypeSystem& operator=(const TypeSystem&) = delete;

  /// The root type (System.Object): no fields.
  [[nodiscard]] const MethodTable* object_type() const noexcept {
    return object_type_;
  }

  /// Begin defining a class type. Names must be unique.
  ClassBuilder define_class(std::string name);

  /// Array of primitive elements; `rank` > 1 makes a true multidimensional
  /// array. Cached per (kind, rank).
  const MethodTable* primitive_array(ElementKind kind, int rank = 1);

  /// Array of references to `element`; cached per (element, rank).
  const MethodTable* ref_array(const MethodTable* element, int rank = 1);

  [[nodiscard]] const MethodTable* find(const std::string& name) const;
  [[nodiscard]] const MethodTable* by_id(std::uint32_t type_id) const;

  /// Visit every registered type (GC uses this for static roots).
  void for_each_type(const std::function<void(MethodTable*)>& fn);

  [[nodiscard]] MetadataRegistry& metadata() noexcept { return metadata_; }
  [[nodiscard]] const MetadataRegistry& metadata() const noexcept {
    return metadata_;
  }

  [[nodiscard]] std::size_t type_count() const;

 private:
  friend class ClassBuilder;
  const MethodTable* register_type(std::unique_ptr<MethodTable> mt);
  std::uint32_t next_id() { return next_type_id_++; }

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<MethodTable>> types_;
  std::unordered_map<std::string, const MethodTable*> by_name_;
  MetadataRegistry metadata_;
  const MethodTable* object_type_ = nullptr;
  std::uint32_t next_type_id_ = 1;
};

}  // namespace motor::vm
