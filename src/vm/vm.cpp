#include "vm/vm.hpp"

#include <algorithm>

namespace motor::vm {

Vm::Vm(VmConfig config) : config_(std::move(config)) {
  heap_ = std::make_unique<ManagedHeap>(*this, config_.heap);
}

void Vm::attach_thread(ManagedThread* thread) {
  {
    std::lock_guard lk(threads_mu_);
    threads_.push_back(thread);
  }
  safepoints_.register_thread();
}

void Vm::detach_thread(ManagedThread* thread) {
  {
    std::lock_guard lk(threads_mu_);
    threads_.erase(std::remove(threads_.begin(), threads_.end(), thread),
                   threads_.end());
  }
  safepoints_.unregister_thread();
}

void Vm::enumerate_roots(RootVisitor& visitor) {
  // Runs inside stop-the-world: thread list and per-thread state are
  // stable. The lock still guards against attach/detach racing a
  // collection requested by another thread.
  std::lock_guard lk(threads_mu_);
  for (ManagedThread* t : threads_) {
    for (Obj* slot : t->root_slots()) visitor.visit(slot);
    for (std::deque<Obj>* range : t->root_ranges()) {
      for (Obj& obj : *range) visitor.visit(&obj);
    }
    for (Frame& frame : t->frames()) {
      for (Value& v : frame.locals) {
        if (v.is_ref()) visitor.visit(&v.ref);
      }
      for (Value& v : frame.stack) {
        if (v.is_ref()) visitor.visit(&v.ref);
      }
    }
  }
}

ManagedThread::ManagedThread(Vm& vm) : vm_(vm) { vm_.attach_thread(this); }

ManagedThread::~ManagedThread() { vm_.detach_thread(this); }

void ManagedThread::poll_gc() { vm_.safepoints().poll(); }

void ManagedThread::pop_root(Obj* slot) {
  MOTOR_CHECK(!root_slots_.empty() && root_slots_.back() == slot,
              "GC roots must unwind LIFO");
  root_slots_.pop_back();
}

void ManagedThread::pop_root_range(std::deque<Obj>* range) {
  MOTOR_CHECK(!root_ranges_.empty() && root_ranges_.back() == range,
              "GC root ranges must unwind LIFO");
  root_ranges_.pop_back();
}

}  // namespace motor::vm
