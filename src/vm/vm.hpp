// Vm: one managed runtime instance — type system, heap/GC, safepoints,
// call mechanisms, and thread registry. Each Motor rank owns exactly one
// Vm, giving ranks fully disjoint managed heaps (separate "processes" on
// one fabric).
#pragma once

#include <memory>
#include <mutex>

#include "vm/fcall.hpp"
#include "vm/heap.hpp"
#include "vm/managed_thread.hpp"
#include "vm/pinvoke.hpp"
#include "vm/runtime_profile.hpp"
#include "vm/safepoint.hpp"
#include "vm/type_system.hpp"

namespace motor::vm {

struct VmConfig {
  HeapConfig heap;
  RuntimeProfile profile = RuntimeProfile::sscli();
};

class Vm : public RootProvider {
 public:
  explicit Vm(VmConfig config = VmConfig{});
  ~Vm() override = default;

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  [[nodiscard]] TypeSystem& types() noexcept { return types_; }
  [[nodiscard]] ManagedHeap& heap() noexcept { return *heap_; }
  [[nodiscard]] SafepointController& safepoints() noexcept {
    return safepoints_;
  }
  [[nodiscard]] const RuntimeProfile& profile() const noexcept {
    return config_.profile;
  }
  [[nodiscard]] FCallTable& fcalls() noexcept { return fcalls_; }
  [[nodiscard]] PInvokeTable& pinvokes() noexcept { return pinvokes_; }

  // ---- thread registry (RootProvider) ----
  void attach_thread(ManagedThread* thread);
  void detach_thread(ManagedThread* thread);
  void enumerate_roots(RootVisitor& visitor) override;

  // ---- convenience allocation (managed entry points) ----
  Obj new_object(const MethodTable* mt) { return heap_->alloc_object(mt); }
  Obj new_array(const MethodTable* element_array_mt, std::int64_t length) {
    return heap_->alloc_array(element_array_mt, length);
  }

 private:
  VmConfig config_;
  TypeSystem types_;
  SafepointController safepoints_;
  std::unique_ptr<ManagedHeap> heap_;
  FCallTable fcalls_;
  PInvokeTable pinvokes_;

  std::mutex threads_mu_;
  std::vector<ManagedThread*> threads_;
};

}  // namespace motor::vm
