// The wrapper baselines: correctness of the Indiana (P/Invoke), mpiJava
// (JNI) and pure-managed communicators, and their behavioural signatures
// (always-pin, stack overflow on deep lists).
#include <gtest/gtest.h>

#include "baselines/indiana_bindings.hpp"
#include "baselines/mpijava_bindings.hpp"
#include "baselines/native_pingpong.hpp"
#include "baselines/pure_managed.hpp"
#include "vm/handles.hpp"

namespace motor::baselines {
namespace {

vm::VmConfig host_config(vm::RuntimeProfile profile) {
  vm::VmConfig c;
  c.profile = std::move(profile);
  c.heap.young_bytes = 512 * 1024;
  return c;
}

struct ListTypes {
  const vm::MethodTable* ints;
  const vm::MethodTable* node;

  explicit ListTypes(vm::Vm& vm) {
    ints = vm.types().primitive_array(vm::ElementKind::kInt32);
    node = vm.types()
               .define_class("LinkedArray")
               .ref_field("array", ints)
               .ref_field("next", vm.types().object_type())
               .field("id", vm::ElementKind::kInt32)
               .build();
  }

  vm::Obj make_list(vm::Vm& vm, vm::ManagedThread& thread, int n) const {
    vm::GcRoot head(thread, nullptr);
    for (int i = n - 1; i >= 0; --i) {
      vm::GcRoot arr(thread, vm.heap().alloc_array(ints, 2));
      vm::set_element<std::int32_t>(arr.get(), 0, i);
      vm::Obj x = vm.heap().alloc_object(node);
      vm::set_ref_field(x, node->field_named("array")->offset(), arr.get());
      vm::set_ref_field(x, node->field_named("next")->offset(), head.get());
      vm::set_field<std::int32_t>(x, node->field_named("id")->offset(), i);
      head.set(x);
    }
    return head.get();
  }
};

template <typename MakeComm>
void run_two_hosted_ranks(vm::RuntimeProfile profile, MakeComm&& body) {
  mpi::World world(2);
  world.run([&](mpi::RankCtx& ctx) {
    vm::Vm vm(host_config(profile));
    vm::ManagedThread thread(vm);
    body(vm, thread, ctx);
  });
}

TEST(IndianaTest, ArrayRoundTrip) {
  run_two_hosted_ranks(
      vm::RuntimeProfile::uncosted(),
      [](vm::Vm& vm, vm::ManagedThread& thread, mpi::RankCtx& ctx) {
        IndianaCommunicator comm(vm, thread, ctx.comm_world());
        const vm::MethodTable* ints =
            vm.types().primitive_array(vm::ElementKind::kInt32);
        vm::GcRoot arr(thread, vm.heap().alloc_array(ints, 32));
        if (comm.rank() == 0) {
          for (int i = 0; i < 32; ++i) {
            vm::set_element<std::int32_t>(arr.get(), i, i * 2);
          }
          ASSERT_TRUE(comm.send(arr.get(), 1, 0).is_ok());
        } else {
          ASSERT_TRUE(comm.recv(arr.get(), 0, 0).is_ok());
          EXPECT_EQ((vm::get_element<std::int32_t>(arr.get(), 9)), 18);
        }
        EXPECT_EQ(comm.pinvoke_calls(), 1u);
      });
}

TEST(IndianaTest, PinsForEveryOperation) {
  run_two_hosted_ranks(
      vm::RuntimeProfile::uncosted(),
      [](vm::Vm& vm, vm::ManagedThread& thread, mpi::RankCtx& ctx) {
        IndianaCommunicator comm(vm, thread, ctx.comm_world());
        const vm::MethodTable* ints =
            vm.types().primitive_array(vm::ElementKind::kInt32);
        vm::GcRoot arr(thread, vm.heap().alloc_array(ints, 8));
        vm.heap().collect();  // even elder buffers get pinned by wrappers
        for (int i = 0; i < 5; ++i) {
          if (comm.rank() == 0) {
            comm.send(arr.get(), 1, i);
          } else {
            comm.recv(arr.get(), 0, i);
          }
        }
        EXPECT_EQ(vm.heap().stats().pin_calls, 5u);
        EXPECT_EQ(vm.heap().stats().unpin_calls, 5u);
        EXPECT_EQ(vm.heap().pin_table_size(), 0u);
      });
}

TEST(IndianaTest, ObjectTreeViaCliSerialization) {
  run_two_hosted_ranks(
      vm::RuntimeProfile::uncosted(),
      [](vm::Vm& vm, vm::ManagedThread& thread, mpi::RankCtx& ctx) {
        ListTypes types(vm);
        IndianaCommunicator comm(vm, thread, ctx.comm_world());
        if (comm.rank() == 0) {
          vm::GcRoot list(thread, types.make_list(vm, thread, 20));
          ASSERT_TRUE(comm.send_object_tree(list.get(), 1, 0).is_ok());
        } else {
          vm::Obj list = nullptr;
          ASSERT_TRUE(comm.recv_object_tree(0, 0, &list).is_ok());
          for (int i = 0; i < 20; ++i) {
            ASSERT_NE(list, nullptr);
            EXPECT_EQ((vm::get_field<std::int32_t>(
                          list, types.node->field_named("id")->offset())),
                      i);
            list = vm::get_ref_field(
                list, types.node->field_named("next")->offset());
          }
        }
      });
}

TEST(IndianaTest, DeepListsAreFineUnlikeJava) {
  // CLI binary serialization is iterative: 2000-node lists round-trip.
  run_two_hosted_ranks(
      vm::RuntimeProfile::uncosted(),
      [](vm::Vm& vm, vm::ManagedThread& thread, mpi::RankCtx& ctx) {
        ListTypes types(vm);
        IndianaCommunicator comm(vm, thread, ctx.comm_world());
        if (comm.rank() == 0) {
          vm::GcRoot list(thread, types.make_list(vm, thread, 2000));
          ASSERT_TRUE(comm.send_object_tree(list.get(), 1, 0).is_ok());
        } else {
          vm::Obj list = nullptr;
          ASSERT_TRUE(comm.recv_object_tree(0, 0, &list).is_ok());
          ASSERT_NE(list, nullptr);
        }
      });
}

TEST(MpiJavaTest, ArrayRoundTripWithAutoPinning) {
  run_two_hosted_ranks(
      vm::RuntimeProfile::uncosted(),
      [](vm::Vm& vm, vm::ManagedThread& thread, mpi::RankCtx& ctx) {
        MpiJavaCommunicator comm(vm, thread, ctx.comm_world());
        const vm::MethodTable* ints =
            vm.types().primitive_array(vm::ElementKind::kInt32);
        vm::GcRoot arr(thread, vm.heap().alloc_array(ints, 16));
        if (comm.rank() == 0) {
          for (int i = 0; i < 16; ++i) {
            vm::set_element<std::int32_t>(arr.get(), i, 5 - i);
          }
          ASSERT_TRUE(comm.send(arr.get(), 1, 0).is_ok());
        } else {
          ASSERT_TRUE(comm.recv(arr.get(), 0, 0).is_ok());
          EXPECT_EQ((vm::get_element<std::int32_t>(arr.get(), 10)), -5);
        }
        EXPECT_EQ(vm.heap().stats().pin_calls, 1u);     // JNI auto-pin
        EXPECT_EQ(vm.heap().stats().unpin_calls, 1u);   // JNI auto-unpin
      });
}

TEST(MpiJavaTest, ObjectTransportRoundTrips) {
  run_two_hosted_ranks(
      vm::RuntimeProfile::uncosted(),
      [](vm::Vm& vm, vm::ManagedThread& thread, mpi::RankCtx& ctx) {
        ListTypes types(vm);
        MpiJavaCommunicator comm(vm, thread, ctx.comm_world());
        if (comm.rank() == 0) {
          vm::GcRoot list(thread, types.make_list(vm, thread, 50));
          ASSERT_TRUE(comm.send_object(list.get(), 1, 0).is_ok());
        } else {
          vm::Obj list = nullptr;
          ASSERT_TRUE(comm.recv_object(0, 0, &list).is_ok());
          ASSERT_NE(list, nullptr);
          EXPECT_EQ((vm::get_field<std::int32_t>(
                        list, types.node->field_named("id")->offset())),
                    0);
        }
      });
}

TEST(MpiJavaTest, DeepListStackOverflows) {
  // The Figure 10 failure: mpiJava dies past 1024 objects.
  run_two_hosted_ranks(
      vm::RuntimeProfile::uncosted(),
      [](vm::Vm& vm, vm::ManagedThread& thread, mpi::RankCtx& ctx) {
        if (ctx.comm_world().rank() != 0) return;
        ListTypes types(vm);
        MpiJavaCommunicator comm(vm, thread, ctx.comm_world());
        vm::GcRoot list(thread, types.make_list(vm, thread, 1024));
        EXPECT_EQ(comm.send_object(list.get(), 1, 0).code(),
                  ErrorCode::kStackOverflow);
      });
}

TEST(PureManagedTest, ByteArrayRoundTrip) {
  run_two_hosted_ranks(
      vm::RuntimeProfile::uncosted(),
      [](vm::Vm& vm, vm::ManagedThread& thread, mpi::RankCtx& ctx) {
        PureManagedCommunicator comm(vm, thread, ctx.comm_world());
        const vm::MethodTable* bytes =
            vm.types().primitive_array(vm::ElementKind::kUInt8);
        vm::GcRoot arr(thread, vm.heap().alloc_array(bytes, 100));
        if (comm.rank() == 0) {
          for (int i = 0; i < 100; ++i) {
            vm::set_element<std::uint8_t>(arr.get(),
                                          i, static_cast<std::uint8_t>(i));
          }
          ASSERT_TRUE(comm.send(arr.get(), 1, 0).is_ok());
        } else {
          ASSERT_TRUE(comm.recv(arr.get(), 0, 0).is_ok());
          EXPECT_EQ((vm::get_element<std::uint8_t>(arr.get(), 42)), 42);
        }
        EXPECT_GT(comm.managed_element_copies(), 99u);
      });
}

TEST(NativePingPongTest, ProducesPlausibleTiming) {
  PingPongSpec spec;
  spec.warmup_iterations = 10;
  spec.timed_iterations = 20;
  spec.repeats = 1;
  const double us = native_pingpong_us(1024, spec);
  EXPECT_GT(us, 0.0);
  EXPECT_LT(us, 100'000.0);  // sanity: sub-0.1s per round trip
}

}  // namespace
}  // namespace motor::baselines
