#include "common/buffer.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace motor {
namespace {

TEST(ByteBufferTest, StartsEmpty) {
  ByteBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.remaining(), 0u);
}

TEST(ByteBufferTest, PutGetRoundTripScalars) {
  ByteBuffer buf;
  buf.put_u8(0xAB);
  buf.put_u16(0xBEEF);
  buf.put_u32(0xDEADBEEFu);
  buf.put_u64(0x0123456789ABCDEFull);
  buf.put_i32(-42);
  buf.put_i64(-1234567890123ll);
  buf.put(3.5);
  buf.put(2.25f);

  std::uint8_t u8;
  std::uint16_t u16;
  std::uint32_t u32;
  std::uint64_t u64;
  std::int32_t i32;
  std::int64_t i64;
  double d;
  float f;
  ASSERT_TRUE(buf.get(u8).is_ok());
  ASSERT_TRUE(buf.get(u16).is_ok());
  ASSERT_TRUE(buf.get(u32).is_ok());
  ASSERT_TRUE(buf.get(u64).is_ok());
  ASSERT_TRUE(buf.get(i32).is_ok());
  ASSERT_TRUE(buf.get(i64).is_ok());
  ASSERT_TRUE(buf.get(d).is_ok());
  ASSERT_TRUE(buf.get(f).is_ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1234567890123ll);
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_FLOAT_EQ(f, 2.25f);
  EXPECT_EQ(buf.remaining(), 0u);
}

TEST(ByteBufferTest, UnderrunReportsSerializationError) {
  ByteBuffer buf;
  buf.put_u16(7);
  std::uint32_t v;
  Status st = buf.get(v);
  EXPECT_EQ(st.code(), ErrorCode::kSerialization);
}

TEST(ByteBufferTest, AppendAndReadRaw) {
  ByteBuffer buf;
  const char text[] = "hello, fabric";
  buf.append_raw(text, sizeof text);
  char out[sizeof text];
  ASSERT_TRUE(buf.read(as_writable_bytes_of(out, sizeof out)).is_ok());
  EXPECT_STREQ(out, text);
}

TEST(ByteBufferTest, OverwriteBackpatchesLengthSlot) {
  ByteBuffer buf;
  buf.put_u32(0);  // placeholder
  buf.put_u64(99);
  buf.overwrite_at(0, std::uint32_t{12});
  std::uint32_t len;
  ASSERT_TRUE(buf.get(len).is_ok());
  EXPECT_EQ(len, 12u);
}

TEST(ByteBufferTest, SeekRewindsCursor) {
  ByteBuffer buf;
  buf.put_u32(1);
  buf.put_u32(2);
  EXPECT_EQ(buf.get_or_die<std::uint32_t>(), 1u);
  buf.seek(0);
  EXPECT_EQ(buf.get_or_die<std::uint32_t>(), 1u);
  EXPECT_EQ(buf.get_or_die<std::uint32_t>(), 2u);
}

TEST(ByteBufferTest, SeekPastEndFatals) {
  ByteBuffer buf;
  buf.put_u8(1);
  EXPECT_THROW(buf.seek(2), FatalError);
}

TEST(ByteBufferTest, ClearResetsCursorAndSize) {
  ByteBuffer buf;
  buf.put_u64(5);
  buf.get_or_die<std::uint32_t>();
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.cursor(), 0u);
}

TEST(ByteBufferTest, GetOrDieOnEmptyFatals) {
  ByteBuffer buf;
  EXPECT_THROW(buf.get_or_die<std::uint8_t>(), FatalError);
}

}  // namespace
}  // namespace motor
