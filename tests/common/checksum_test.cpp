#include "common/checksum.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/prng.hpp"

namespace motor {
namespace {

ByteSpan bytes_of(const char* s) {
  return {reinterpret_cast<const std::byte*>(s), std::strlen(s)};
}

TEST(Crc32cTest, KnownVectors) {
  // The canonical CRC-32C check value (RFC 3720 appendix / iSCSI).
  EXPECT_EQ(crc32c(bytes_of("123456789")), 0xE3069283u);
  // 32 zero bytes — a second published vector.
  std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_EQ(crc32c({zeros.data(), zeros.size()}), 0x8A9136AAu);
  // 32 0xFF bytes.
  std::vector<std::byte> ones(32, std::byte{0xFF});
  EXPECT_EQ(crc32c({ones.data(), ones.size()}), 0x62A8AB43u);
}

TEST(Crc32cTest, EmptyIsZero) {
  EXPECT_EQ(crc32c({}), 0u);
  EXPECT_EQ(crc32c({}, 0u), 0u);
}

TEST(Crc32cTest, IncrementalEqualsWhole) {
  // crc32c(b, crc32c(a)) == crc32c(a ++ b) — the property the zero-copy
  // send path relies on to checksum a gather list without flattening it.
  Prng gen(2024);
  std::vector<std::byte> data(4096);
  for (auto& b : data) {
    b = static_cast<std::byte>(gen.next_below(256));
  }
  const std::uint32_t whole = crc32c({data.data(), data.size()});

  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{63},
                          std::size_t{2048}, data.size()}) {
    const std::uint32_t first = crc32c({data.data(), cut});
    const std::uint32_t both =
        crc32c({data.data() + cut, data.size() - cut}, first);
    EXPECT_EQ(both, whole) << "cut at " << cut;
  }

  // Many-fragment accumulation (simulating a SpanVec walk).
  std::uint32_t acc = 0;
  std::size_t off = 0;
  Prng frag(7);
  while (off < data.size()) {
    const std::size_t take = std::min<std::size_t>(
        1 + frag.next_below(97), data.size() - off);
    acc = crc32c({data.data() + off, take}, acc);
    off += take;
  }
  EXPECT_EQ(acc, whole);
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::vector<std::byte> data(256, std::byte{0x5C});
  const std::uint32_t clean = crc32c({data.data(), data.size()});
  for (std::size_t bit : {std::size_t{0}, std::size_t{7}, std::size_t{1000},
                          data.size() * 8 - 1}) {
    data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    EXPECT_NE(crc32c({data.data(), data.size()}), clean) << "bit " << bit;
    data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  }
  EXPECT_EQ(crc32c({data.data(), data.size()}), clean);
}

}  // namespace
}  // namespace motor
