#include "common/prng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace motor {
namespace {

TEST(PrngTest, DeterministicForSameSeed) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(PrngTest, DifferentSeedsDiverge) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(PrngTest, NextBelowRespectsBound) {
  Prng p(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(p.next_below(17), 17u);
  }
  EXPECT_EQ(p.next_below(0), 0u);
  EXPECT_EQ(p.next_below(1), 0u);
}

TEST(PrngTest, NextInCoversInclusiveRange) {
  Prng p(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(p.next_in(-3, 3));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), -3);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  Prng p(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = p.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(PrngTest, BernoulliRoughlyCalibrated) {
  Prng p(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (p.next_bool(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(PrngTest, ReseedRestartsSequence) {
  Prng p(5);
  const auto first = p.next_u64();
  p.next_u64();
  p.reseed(5);
  EXPECT_EQ(p.next_u64(), first);
}

}  // namespace
}  // namespace motor
