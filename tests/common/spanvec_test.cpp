// SpanVec: the gather-list primitive behind the zero-copy data path.
#include "common/spanvec.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace motor {
namespace {

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> v(std::strlen(s));
  std::memcpy(v.data(), s, v.size());
  return v;
}

std::string to_string(ByteSpan s) {
  return {reinterpret_cast<const char*>(s.data()), s.size()};
}

std::string flatten(const SpanVec& sv) {
  std::vector<std::byte> out(sv.total_bytes());
  sv.copy_to(out);
  return {reinterpret_cast<const char*>(out.data()), out.size()};
}

TEST(SpanVecTest, EmptyByDefault) {
  SpanVec sv;
  EXPECT_TRUE(sv.empty());
  EXPECT_EQ(sv.part_count(), 0u);
  EXPECT_EQ(sv.total_bytes(), 0u);
}

TEST(SpanVecTest, AppendTracksTotalsAndDropsEmptyParts) {
  auto a = bytes_of("hello");
  auto b = bytes_of(" world");
  SpanVec sv;
  sv.append({a.data(), a.size()});
  sv.append({});  // dropped
  sv.append({b.data(), b.size()});
  EXPECT_EQ(sv.part_count(), 2u);
  EXPECT_EQ(sv.total_bytes(), 11u);
  EXPECT_EQ(flatten(sv), "hello world");
}

TEST(SpanVecTest, SingleSpanConstructor) {
  auto a = bytes_of("abc");
  SpanVec sv(ByteSpan{a.data(), a.size()});
  EXPECT_EQ(sv.part_count(), 1u);
  EXPECT_EQ(flatten(sv), "abc");
}

TEST(SpanVecTest, SliceWithinOnePart) {
  auto a = bytes_of("abcdefgh");
  SpanVec sv(ByteSpan{a.data(), a.size()});
  SpanVec mid = sv.slice(2, 3);
  EXPECT_EQ(mid.total_bytes(), 3u);
  EXPECT_EQ(flatten(mid), "cde");
}

TEST(SpanVecTest, SliceAcrossParts) {
  auto a = bytes_of("abc");
  auto b = bytes_of("defg");
  auto c = bytes_of("hij");
  SpanVec sv;
  sv.append({a.data(), a.size()});
  sv.append({b.data(), b.size()});
  sv.append({c.data(), c.size()});
  // Covers the tail of part 0, all of part 1, and the head of part 2.
  SpanVec cut = sv.slice(2, 6);
  EXPECT_EQ(flatten(cut), "cdefgh");
  // Slices reference the same memory — no copying.
  EXPECT_EQ(cut.parts().front().data(), a.data() + 2);
}

TEST(SpanVecTest, SliceClampsPastEnd) {
  auto a = bytes_of("abcd");
  SpanVec sv(ByteSpan{a.data(), a.size()});
  EXPECT_EQ(flatten(sv.slice(2, 100)), "cd");
  EXPECT_TRUE(sv.slice(4, 10).empty());
  EXPECT_TRUE(sv.slice(100, 1).empty());
}

TEST(SpanVecTest, CopyToWithOffset) {
  auto a = bytes_of("abc");
  auto b = bytes_of("defg");
  SpanVec sv;
  sv.append({a.data(), a.size()});
  sv.append({b.data(), b.size()});
  std::vector<std::byte> out(4);
  const std::size_t n = sv.copy_to({out.data(), out.size()}, 2);
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(to_string({out.data(), n}), "cdef");
}

TEST(SpanVecTest, CopyToClampsToOutputSize) {
  auto a = bytes_of("abcdef");
  SpanVec sv(ByteSpan{a.data(), a.size()});
  std::vector<std::byte> out(3);
  EXPECT_EQ(sv.copy_to({out.data(), out.size()}), 3u);
  EXPECT_EQ(to_string({out.data(), 3}), "abc");
}

TEST(SpanVecTest, ClearResets) {
  auto a = bytes_of("abc");
  SpanVec sv(ByteSpan{a.data(), a.size()});
  sv.clear();
  EXPECT_TRUE(sv.empty());
  EXPECT_EQ(sv.total_bytes(), 0u);
}

}  // namespace
}  // namespace motor
