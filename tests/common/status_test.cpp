#include "common/status.hpp"

#include <gtest/gtest.h>

namespace motor {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(st.code(), ErrorCode::kSuccess);
  EXPECT_EQ(st.to_string(), "kSuccess");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status st(ErrorCode::kTruncate, "buffer too small (16 < 64)");
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), ErrorCode::kTruncate);
  EXPECT_EQ(st.to_string(), "kTruncate: buffer too small (16 < 64)");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status(ErrorCode::kNoMem, "a"), Status(ErrorCode::kNoMem, "b"));
  EXPECT_FALSE(Status(ErrorCode::kNoMem) == Status(ErrorCode::kTagError));
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(error_code_name(static_cast<ErrorCode>(c)), "<unknown>");
  }
}

TEST(StatusTest, FatalThrowsFatalError) {
  EXPECT_THROW(fatal("test", "boom"), FatalError);
  try {
    fatal("gc", "heap corruption");
  } catch (const FatalError& e) {
    EXPECT_NE(std::string(e.what()).find("gc"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("heap corruption"), std::string::npos);
  }
}

TEST(StatusTest, CheckMacroPassesAndFails) {
  EXPECT_NO_THROW(MOTOR_CHECK(1 + 1 == 2, "arithmetic"));
  EXPECT_THROW(MOTOR_CHECK(false, "always fails"), FatalError);
}

}  // namespace
}  // namespace motor
