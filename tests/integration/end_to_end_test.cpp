// Whole-stack integration: Motor ranks exercising GC + pinning + MPI +
// serialization together, cross-implementation interop over one MPI core,
// and multi-thread/VM stress.
#include <gtest/gtest.h>

#include "baselines/indiana_bindings.hpp"
#include "motor/motor_runtime.hpp"
#include "mpi/collectives.hpp"

namespace motor {
namespace {

using mp::MotorContext;
using mp::MotorWorldConfig;

MotorWorldConfig config(int ranks = 2, std::size_t young = 128 * 1024) {
  MotorWorldConfig c;
  c.ranks = ranks;
  c.vm.profile = vm::RuntimeProfile::uncosted();
  c.vm.heap.young_bytes = young;
  return c;
}

TEST(EndToEndTest, PingPongUnderConstantGcPressure) {
  // Allocate garbage between every exchange in a tiny nursery: many
  // collections happen mid-stream; data must stay intact throughout.
  run_motor_world(config(2, 64 * 1024), [](MotorContext& ctx) {
    const vm::MethodTable* ints =
        ctx.vm().types().primitive_array(vm::ElementKind::kInt32);
    const int peer = 1 - ctx.rank();
    for (int round = 0; round < 30; ++round) {
      vm::GcRoot arr(ctx.thread(), ctx.vm().heap().alloc_array(ints, 128));
      if (ctx.rank() == 0) {
        for (int i = 0; i < 128; ++i) {
          vm::set_element<std::int32_t>(arr.get(), i, round * 1000 + i);
        }
        ASSERT_TRUE(ctx.mp().Send(arr.get(), peer, round).is_ok());
      } else {
        ASSERT_TRUE(ctx.mp().Recv(arr.get(), peer, round).is_ok());
        EXPECT_EQ((vm::get_element<std::int32_t>(arr.get(), 77)),
                  round * 1000 + 77);
      }
      // Garbage to force collections.
      for (int g = 0; g < 20; ++g) {
        ctx.vm().heap().alloc_array(ints, 200);
      }
    }
    EXPECT_GT(ctx.vm().heap().stats().collections, 0u);
    ctx.vm().heap().verify_heap();
    ctx.mp().Barrier();
  });
}

TEST(EndToEndTest, OoTransportUnderGcPressure) {
  run_motor_world(config(2, 96 * 1024), [](MotorContext& ctx) {
    auto& ts = ctx.vm().types();
    const vm::MethodTable* ints =
        ts.primitive_array(vm::ElementKind::kInt32);
    const vm::MethodTable* node =
        ts.define_class("Node")
            .ref_field("data", ints, true)
            .ref_field("next", ts.object_type(), true)
            .field("id", vm::ElementKind::kInt32)
            .build();
    const int peer = 1 - ctx.rank();

    for (int round = 0; round < 10; ++round) {
      if (ctx.rank() == 0) {
        vm::GcRoot head(ctx.thread(), nullptr);
        for (int i = 7; i >= 0; --i) {
          vm::GcRoot arr(ctx.thread(), ctx.vm().heap().alloc_array(ints, 8));
          vm::set_element<std::int32_t>(arr.get(), 0, round * 100 + i);
          vm::Obj n = ctx.vm().heap().alloc_object(node);
          vm::set_ref_field(n, 0, arr.get());
          vm::set_ref_field(n, 8, head.get());
          vm::set_field<std::int32_t>(n, 16, i);
          head.set(n);
        }
        ASSERT_TRUE(ctx.mp().OSend(head.get(), peer, round).is_ok());
      } else {
        vm::Obj head = ctx.mp().ORecv(peer, round);
        ASSERT_NE(head, nullptr);
        vm::GcRoot list(ctx.thread(), head);
        // Interleave allocation storms with verification.
        for (int g = 0; g < 30; ++g) ctx.vm().heap().alloc_array(ints, 100);
        vm::Obj cur = list.get();
        for (int i = 0; i < 8; ++i) {
          ASSERT_NE(cur, nullptr);
          EXPECT_EQ((vm::get_field<std::int32_t>(cur, 16)), i);
          if (i == 0) {
            vm::Obj data = vm::get_ref_field(cur, 0);
            EXPECT_EQ((vm::get_element<std::int32_t>(data, 0)),
                      round * 100);
          }
          cur = vm::get_ref_field(cur, 8);
        }
      }
    }
    ctx.vm().heap().verify_heap();
    ctx.mp().Barrier();
  });
}

TEST(EndToEndTest, MotorAndIndianaInteroperateOverOneCore) {
  // Both bindings sit on the same Message Passing Core, so a Motor rank
  // can talk to an Indiana-hosted rank — the architecture claim of
  // Figure 1/2 made concrete.
  mpi::World world(2);
  world.run([](mpi::RankCtx& rank_ctx) {
    vm::VmConfig vc;
    vc.profile = vm::RuntimeProfile::uncosted();
    vm::Vm vm(vc);
    vm::ManagedThread thread(vm);
    const vm::MethodTable* ints =
        vm.types().primitive_array(vm::ElementKind::kInt32);
    vm::GcRoot arr(thread, vm.heap().alloc_array(ints, 16));

    if (rank_ctx.comm_world().rank() == 0) {
      mp::MPDirect motor(vm, thread, rank_ctx.comm_world());
      for (int i = 0; i < 16; ++i) {
        vm::set_element<std::int32_t>(arr.get(), i, 900 + i);
      }
      ASSERT_TRUE(motor.send(arr.get(), 1, 3).is_ok());
    } else {
      baselines::IndianaCommunicator indiana(vm, thread,
                                             rank_ctx.comm_world());
      ASSERT_TRUE(indiana.recv(arr.get(), 0, 3).is_ok());
      EXPECT_EQ((vm::get_element<std::int32_t>(arr.get(), 15)), 915);
    }
  });
}

TEST(EndToEndTest, FourRankOoScatterComputeGather) {
  // Scatter an object array, transform locally, gather back — a miniature
  // of the data-parallel pattern the OO operations exist for.
  run_motor_world(config(4, 256 * 1024), [](MotorContext& ctx) {
    auto& ts = ctx.vm().types();
    const vm::MethodTable* ints = ts.primitive_array(vm::ElementKind::kInt32);
    const vm::MethodTable* cell =
        ts.define_class("Cell")
            .ref_field("values", ints, true)
            .field("owner", vm::ElementKind::kInt32)
            .build();
    const vm::MethodTable* cells = ts.ref_array(cell);

    vm::GcRoot input(ctx.thread(), nullptr);
    if (ctx.rank() == 0) {
      input.set(ctx.vm().heap().alloc_array(cells, 8));
      for (int i = 0; i < 8; ++i) {
        vm::GcRoot v(ctx.thread(), ctx.vm().heap().alloc_array(ints, 2));
        vm::set_element<std::int32_t>(v.get(), 0, i);
        vm::Obj c = ctx.vm().heap().alloc_object(cell);
        vm::set_ref_field(c, 0, v.get());
        vm::set_ref_element(input.get(), i, c);
      }
    }
    vm::Obj mine = nullptr;
    ASSERT_TRUE(ctx.mp().OScatter(input.get(), 0, &mine).is_ok());
    vm::GcRoot mine_root(ctx.thread(), mine);
    ASSERT_EQ(vm::array_length(mine_root.get()), 2);

    // Transform: stamp ownership, double the value.
    for (int i = 0; i < 2; ++i) {
      vm::Obj c = vm::get_ref_element(mine_root.get(), i);
      vm::set_field<std::int32_t>(c, 8, ctx.rank());
      vm::Obj v = vm::get_ref_field(c, 0);
      vm::set_element<std::int32_t>(
          v, 1, vm::get_element<std::int32_t>(v, 0) * 2);
    }

    vm::Obj merged = nullptr;
    ASSERT_TRUE(ctx.mp().OGather(mine_root.get(), 0, &merged).is_ok());
    if (ctx.rank() == 0) {
      ASSERT_EQ(vm::array_length(merged), 8);
      for (int i = 0; i < 8; ++i) {
        vm::Obj c = vm::get_ref_element(merged, i);
        EXPECT_EQ((vm::get_field<std::int32_t>(c, 8)), i / 2);  // owner
        vm::Obj v = vm::get_ref_field(c, 0);
        EXPECT_EQ((vm::get_element<std::int32_t>(v, 1)), i * 2);
      }
    }
  });
}

TEST(EndToEndTest, SecondManagedThreadForcesGcDuringTransfers) {
  // A second managed thread on each rank's VM allocates aggressively,
  // triggering collections the MPI thread only sees at its poll points;
  // pinning must keep every in-flight buffer coherent.
  run_motor_world(config(2, 64 * 1024), [](MotorContext& ctx) {
    std::atomic<bool> stop{false};
    vm::Vm* vm_ptr = &ctx.vm();
    pal::Thread allocator("alloc", [vm_ptr, &stop] {
      vm::ManagedThread t(*vm_ptr);
      const vm::MethodTable* ints =
          vm_ptr->types().primitive_array(vm::ElementKind::kInt32);
      while (!stop) {
        for (int i = 0; i < 10; ++i) vm_ptr->heap().alloc_array(ints, 64);
        t.poll_gc();
      }
    });

    const vm::MethodTable* ints =
        ctx.vm().types().primitive_array(vm::ElementKind::kInt32);
    const int peer = 1 - ctx.rank();
    for (int round = 0; round < 20; ++round) {
      vm::GcRoot arr(ctx.thread(), ctx.vm().heap().alloc_array(ints, 512));
      if (ctx.rank() == 0) {
        for (int i = 0; i < 512; ++i) {
          vm::set_element<std::int32_t>(arr.get(), i, round + i);
        }
        ASSERT_TRUE(ctx.mp().Ssend(arr.get(), peer, round).is_ok());
      } else {
        ASSERT_TRUE(ctx.mp().Recv(arr.get(), peer, round).is_ok());
        for (int i = 0; i < 512; i += 61) {
          EXPECT_EQ((vm::get_element<std::int32_t>(arr.get(), i)), round + i);
        }
      }
    }
    stop = true;
    {
      // Joining a thread is a blocking native call: enter preemptive mode
      // so the allocator can finish a collection that is waiting for this
      // thread to park (the CLR pattern for blocking waits).
      vm::NativeRegion native(ctx.vm().safepoints());
      allocator.join();
    }
    ctx.vm().heap().verify_heap();
    ctx.mp().Barrier();
  });
}

TEST(EndToEndTest, SpawnedRanksRunMotorVms) {
  // MPI-2 dynamic process management under Motor: children get their own
  // VMs and exchange objects with parents over the intercommunicator.
  mpi::World world(1);
  world.run([](mpi::RankCtx& parent_ctx) {
    mpi::Comm inter =
        mpi::spawn(parent_ctx.comm_world(), 0, 2, [](mpi::RankCtx& child) {
          vm::VmConfig vc;
          vc.profile = vm::RuntimeProfile::uncosted();
          vm::Vm vm(vc);
          vm::ManagedThread thread(vm);
          mp::MPDirect mp(vm, thread, child.parent());
          const vm::MethodTable* ints =
              vm.types().primitive_array(vm::ElementKind::kInt32);
          vm::GcRoot arr(thread, vm.heap().alloc_array(ints, 4));
          vm::set_element<std::int32_t>(arr.get(), 0,
                                        child.comm_world().rank() * 5);
          ASSERT_TRUE(mp.send(arr.get(), 0, 0).is_ok());
        });

    vm::VmConfig vc;
    vc.profile = vm::RuntimeProfile::uncosted();
    vm::Vm vm(vc);
    vm::ManagedThread thread(vm);
    mp::MPDirect mp(vm, thread, inter);
    const vm::MethodTable* ints =
        vm.types().primitive_array(vm::ElementKind::kInt32);
    int sum = 0;
    for (int child = 0; child < 2; ++child) {
      vm::GcRoot arr(thread, vm.heap().alloc_array(ints, 4));
      mp::MpStatus st;
      ASSERT_TRUE(mp.recv(arr.get(), child, 0, &st).is_ok());
      sum += vm::get_element<std::int32_t>(arr.get(), 0);
    }
    EXPECT_EQ(sum, 0 + 5);
  });
}

}  // namespace
}  // namespace motor
