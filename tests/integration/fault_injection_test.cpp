// Deterministic fault-injection stress suite — the proof of the
// reliability layer. Every scenario wires a two-rank fabric through
// FaultyChannel decorators (both directions: data AND ack/control traffic
// get hurt), turns on DeviceConfig::reliability with tight poll-clock
// timeouts, and pushes patterned messages through eager / rendezvous x
// gathered / staged paths. Assertions:
//   * byte-exact delivery (or a clean kCommError when retries exhaust),
//   * never a hang — all pumping goes through progress_pair_until with a
//     test-local round deadline,
//   * full determinism: every scenario runs twice and must produce
//     identical device + fault-stat counters both times (the PRNG fault
//     schedule and the poll-clock retry machinery are both deterministic).
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "common/prng.hpp"
#include "mpi/device.hpp"
#include "mpi/progress.hpp"
#include "transport/fabric.hpp"

namespace motor::mpi {
namespace {

using transport::FaultConfig;
using transport::FaultyChannel;

// ---------------------------------------------------------------------------
// Scenario machinery

struct Scenario {
  const char* label;
  std::uint64_t seed;         // seeds the fault PRNGs and payload pattern
  FaultConfig faults;         // applied to BOTH directions (distinct seeds)
  std::size_t msg_bytes;      // per-message size
  int messages;               // messages pushed a -> b
  std::size_t eager_threshold;
  std::size_t max_packet_payload;
  bool staged_copies;
  bool sync;                  // synchronous-mode sends
};

// Everything a scenario can observably count. Two runs of the same
// scenario must produce two identical snapshots.
struct Snapshot {
  std::uint64_t a_sent = 0, a_recv = 0, b_sent = 0, b_recv = 0;
  std::uint64_t a_staged = 0, a_direct = 0, b_staged = 0, b_direct = 0;
  std::uint64_t a_dropped = 0, a_retried = 0, a_crc = 0, a_dup = 0,
                a_acks = 0;
  std::uint64_t b_dropped = 0, b_retried = 0, b_crc = 0, b_dup = 0,
                b_acks = 0;
  std::uint64_t wire_ab_injected = 0, wire_ba_injected = 0;
  std::uint64_t wire_ab_frames = 0, wire_ba_frames = 0;

  bool operator==(const Snapshot&) const = default;

  [[nodiscard]] std::string str() const {
    std::ostringstream os;
    os << "a[sent=" << a_sent << " recv=" << a_recv << " staged=" << a_staged
       << " direct=" << a_direct << " drop=" << a_dropped
       << " retry=" << a_retried << " crc=" << a_crc << " dup=" << a_dup
       << " acks=" << a_acks << "] b[sent=" << b_sent << " recv=" << b_recv
       << " staged=" << b_staged << " direct=" << b_direct
       << " drop=" << b_dropped << " retry=" << b_retried << " crc=" << b_crc
       << " dup=" << b_dup << " acks=" << b_acks << "] wire[ab="
       << wire_ab_injected << "/" << wire_ab_frames << " ba="
       << wire_ba_injected << "/" << wire_ba_frames << "]";
    return os.str();
  }
};

ReliabilityConfig tight_reliability() {
  ReliabilityConfig rc;
  rc.enabled = true;
  rc.retry_timeout_polls = 64;
  rc.retry_timeout_cap_polls = 1024;
  rc.max_retries = 64;           // generous: scenarios must SUCCEED
  rc.recv_stall_polls = 1 << 20; // watchdog must not fire spuriously
  return rc;
}

void fill_pattern(std::vector<std::byte>& buf, std::uint64_t seed) {
  Prng gen(seed * 0x9E3779B97F4A7C15ull + 1);
  for (std::size_t i = 0; i < buf.size(); i += 8) {
    const std::uint64_t v = gen.next_u64();
    const std::size_t n = std::min<std::size_t>(8, buf.size() - i);
    std::memcpy(buf.data() + i, &v, n);
  }
}

// One full scenario execution: fresh fabric, fresh devices, same seeds.
// Returns the counter snapshot; fails the test on any delivery error.
Snapshot run_scenario(const Scenario& sc) {
  transport::Fabric fabric(2, transport::ChannelKind::kRing, 1 << 20);
  FaultConfig ab = sc.faults;
  ab.seed = sc.seed;
  FaultConfig ba = sc.faults;
  ba.seed = sc.seed ^ 0xABCDEF0123456789ull;  // hurt acks differently
  FaultyChannel* wire_ab = fabric.inject_faults(0, 1, ab);
  FaultyChannel* wire_ba = fabric.inject_faults(1, 0, ba);

  DeviceConfig cfg;
  cfg.eager_threshold = sc.eager_threshold;
  cfg.max_packet_payload = sc.max_packet_payload;
  cfg.staged_copies = sc.staged_copies;
  cfg.reliability = tight_reliability();
  Device a(fabric, 0, cfg);
  Device b(fabric, 1, cfg);

  // Patterned payloads, all posted up front so the pump schedule (and
  // therefore the fault schedule) is a pure function of the scenario.
  std::vector<std::vector<std::byte>> outs(sc.messages);
  std::vector<std::vector<std::byte>> ins(sc.messages);
  std::vector<Request> reqs;
  for (int m = 0; m < sc.messages; ++m) {
    outs[m].resize(sc.msg_bytes);
    fill_pattern(outs[m], sc.seed + static_cast<std::uint64_t>(m));
    ins[m].assign(sc.msg_bytes, std::byte{0});
    reqs.push_back(b.post_recv(ins[m], 0, m, 1));
  }
  for (int m = 0; m < sc.messages; ++m) {
    reqs.push_back(a.post_send(outs[m], 1, m, 1, sc.sync));
  }

  // The never-hang guarantee: bounded rounds, not an unbounded wait().
  const bool done = progress_pair_until(a, b, reqs, /*max_rounds=*/200000);
  if (!done) {
    a.dump_state(stderr);
    b.dump_state(stderr);
  }
  EXPECT_TRUE(done) << sc.label << " seed=" << sc.seed
                    << ": requests still pending at deadline (hang)";

  for (int m = 0; m < sc.messages && done; ++m) {
    const Request& r = reqs[static_cast<std::size_t>(m)];
    EXPECT_EQ(r->error, ErrorCode::kSuccess)
        << sc.label << " seed=" << sc.seed << " msg=" << m;
    EXPECT_EQ(r->transferred, sc.msg_bytes)
        << sc.label << " seed=" << sc.seed << " msg=" << m;
    EXPECT_TRUE(ins[m] == outs[m])
        << sc.label << " seed=" << sc.seed << " msg=" << m
        << ": delivered bytes differ from sent bytes";
  }

  Snapshot s;
  s.a_sent = a.bytes_sent();
  s.a_recv = a.bytes_received();
  s.b_sent = b.bytes_sent();
  s.b_recv = b.bytes_received();
  s.a_staged = a.bytes_staged();
  s.a_direct = a.bytes_direct();
  s.b_staged = b.bytes_staged();
  s.b_direct = b.bytes_direct();
  s.a_dropped = a.frames_dropped();
  s.a_retried = a.frames_retried();
  s.a_crc = a.checksum_failures();
  s.a_dup = a.duplicates_suppressed();
  s.a_acks = a.acks_sent();
  s.b_dropped = b.frames_dropped();
  s.b_retried = b.frames_retried();
  s.b_crc = b.checksum_failures();
  s.b_dup = b.duplicates_suppressed();
  s.b_acks = b.acks_sent();
  s.wire_ab_injected = wire_ab->stats().injected();
  s.wire_ba_injected = wire_ba->stats().injected();
  s.wire_ab_frames = wire_ab->stats().frames_total;
  s.wire_ba_frames = wire_ba->stats().frames_total;
  return s;
}

// Run twice; assert byte-exact delivery both times AND identical counters.
void run_scenario_twice(const Scenario& sc) {
  SCOPED_TRACE(sc.label);
  const Snapshot first = run_scenario(sc);
  if (::testing::Test::HasFailure()) return;
  const Snapshot second = run_scenario(sc);
  EXPECT_EQ(first, second)
      << sc.label << " seed=" << sc.seed << " is nondeterministic:\n  run1 "
      << first.str() << "\n  run2 " << second.str();
}

FaultConfig mix_drop() {
  FaultConfig f;
  f.drop_rate = 0.05;
  return f;
}
FaultConfig mix_truncate() {
  FaultConfig f;
  f.truncate_rate = 0.05;
  return f;
}
FaultConfig mix_duplicate() {
  FaultConfig f;
  f.duplicate_rate = 0.08;
  return f;
}
FaultConfig mix_bitflip() {
  FaultConfig f;
  f.bitflip_rate = 0.05;
  return f;
}
FaultConfig mix_delay() {
  FaultConfig f;
  f.delay_rate = 0.08;
  return f;
}
FaultConfig mix_short_write() {
  FaultConfig f;
  f.short_write_rate = 0.20;
  return f;
}
FaultConfig mix_everything() {
  FaultConfig f;
  f.drop_rate = 0.02;
  f.truncate_rate = 0.02;
  f.duplicate_rate = 0.02;
  f.bitflip_rate = 0.02;
  f.delay_rate = 0.02;
  f.short_write_rate = 0.10;
  return f;
}

struct Mix {
  const char* name;
  FaultConfig cfg;
};

const Mix kMixes[] = {
    {"drop", mix_drop()},           {"truncate", mix_truncate()},
    {"duplicate", mix_duplicate()}, {"bitflip", mix_bitflip()},
    {"delay", mix_delay()},         {"short_write", mix_short_write()},
    {"everything", mix_everything()},
};

constexpr std::uint64_t kSeeds[] = {1, 7, 42};

// ---------------------------------------------------------------------------
// The sweep: seeds x fault mixes x (eager | rendezvous). 7 mixes x 3 seeds
// x 2 protocols = 42 scenarios per sweep test, each run twice.

TEST(FaultInjectionStress, EagerGatheredSweep) {
  for (const Mix& mix : kMixes) {
    for (std::uint64_t seed : kSeeds) {
      Scenario sc;
      sc.label = mix.name;
      sc.seed = seed;
      sc.faults = mix.cfg;
      sc.msg_bytes = 4096;          // below the eager threshold
      sc.messages = 8;
      sc.eager_threshold = 64 * 1024;
      sc.max_packet_payload = 16 * 1024;
      sc.staged_copies = false;
      sc.sync = false;
      run_scenario_twice(sc);
    }
  }
}

TEST(FaultInjectionStress, RendezvousGatheredSweep) {
  for (const Mix& mix : kMixes) {
    for (std::uint64_t seed : kSeeds) {
      Scenario sc;
      sc.label = mix.name;
      sc.seed = seed;
      sc.faults = mix.cfg;
      sc.msg_bytes = 96 * 1024;     // way past eager; 6 DATA chunks each
      sc.messages = 3;
      sc.eager_threshold = 1024;
      sc.max_packet_payload = 16 * 1024;
      sc.staged_copies = false;
      sc.sync = false;
      run_scenario_twice(sc);
    }
  }
}

TEST(FaultInjectionStress, StagedCopiesSweep) {
  // The bounce-ablation data path must survive the same chaos: kitchen-
  // sink faults over eager and rendezvous with staged copies on.
  for (std::uint64_t seed : kSeeds) {
    Scenario eager;
    eager.label = "staged-eager";
    eager.seed = seed;
    eager.faults = mix_everything();
    eager.msg_bytes = 4096;
    eager.messages = 6;
    eager.eager_threshold = 64 * 1024;
    eager.max_packet_payload = 16 * 1024;
    eager.staged_copies = true;
    eager.sync = false;
    run_scenario_twice(eager);

    Scenario rndv;
    rndv.label = "staged-rndv";
    rndv.seed = seed;
    rndv.faults = mix_everything();
    rndv.msg_bytes = 48 * 1024;
    rndv.messages = 3;
    rndv.eager_threshold = 1024;
    rndv.max_packet_payload = 8 * 1024;
    rndv.staged_copies = true;
    rndv.sync = false;
    run_scenario_twice(rndv);
  }
}

TEST(FaultInjectionStress, SynchronousSendsUnderFaults) {
  // EagerSync acks ride the same lossy wire; sync sends must still
  // complete exactly once.
  for (std::uint64_t seed : kSeeds) {
    Scenario sc;
    sc.label = "sync-eager";
    sc.seed = seed;
    sc.faults = mix_everything();
    sc.msg_bytes = 2048;
    sc.messages = 6;
    sc.eager_threshold = 64 * 1024;
    sc.max_packet_payload = 16 * 1024;
    sc.staged_copies = false;
    sc.sync = true;
    run_scenario_twice(sc);
  }
}

TEST(FaultInjectionStress, MessageSizeSweep) {
  // Boundary sizes: empty, 1 byte, exactly the eager threshold, one past
  // it (the smallest rendezvous), and a multi-chunk size that does not
  // divide evenly into max_packet_payload.
  const std::size_t kSizes[] = {0, 1, 1024, 1025, 40000};
  for (std::size_t size : kSizes) {
    Scenario sc;
    sc.label = "size-sweep";
    sc.seed = 7 + size;
    sc.faults = mix_everything();
    sc.msg_bytes = size;
    sc.messages = 4;
    sc.eager_threshold = 1024;
    sc.max_packet_payload = 4096;
    sc.staged_copies = false;
    sc.sync = false;
    run_scenario_twice(sc);
  }
}

// ---------------------------------------------------------------------------
// Clean-error paths: when the wire is beyond saving, requests must fail
// with kCommError within the deadline — never hang, never assert.

TEST(FaultInjectionStress, RetryExhaustionFailsCleanly) {
  transport::Fabric fabric(2, transport::ChannelKind::kRing, 1 << 20);
  FaultConfig black_hole;
  black_hole.seed = 99;
  black_hole.drop_rate = 1.0;  // nothing ever reaches rank 1
  fabric.inject_faults(0, 1, black_hole);

  DeviceConfig cfg;
  cfg.reliability = tight_reliability();
  cfg.reliability.retry_timeout_polls = 16;
  cfg.reliability.retry_timeout_cap_polls = 64;
  cfg.reliability.max_retries = 4;
  Device a(fabric, 0, cfg);
  Device b(fabric, 1, cfg);

  std::vector<std::byte> out(512, std::byte{0x5A});
  std::vector<std::byte> in(512);
  Request r = b.post_recv(in, 0, 0, 1);
  Request s = a.post_send(out, 1, 0, 1, false);

  const Request sends[] = {s};
  EXPECT_TRUE(progress_pair_until(a, b, sends, 20000))
      << "exhausted send did not complete (hang)";
  EXPECT_EQ(s->error, ErrorCode::kCommError);
  EXPECT_GE(a.frames_retried(), 4u);

  // The flow is dead: subsequent sends fail fast instead of queueing.
  Request s2 = a.post_send(out, 1, 1, 1, false);
  EXPECT_TRUE(s2->is_complete());
  EXPECT_EQ(s2->error, ErrorCode::kCommError);

  // The receiver never saw a byte; its recv is simply still posted.
  EXPECT_FALSE(r->is_complete());
  b.cancel(r);
  EXPECT_EQ(r->error, ErrorCode::kCancelled);
}

TEST(FaultInjectionStress, ExhaustionIsDeterministic) {
  auto run = [] {
    transport::Fabric fabric(2, transport::ChannelKind::kRing, 1 << 20);
    FaultConfig black_hole;
    black_hole.seed = 99;
    black_hole.drop_rate = 1.0;
    fabric.inject_faults(0, 1, black_hole);
    DeviceConfig cfg;
    cfg.reliability = tight_reliability();
    cfg.reliability.retry_timeout_polls = 16;
    cfg.reliability.retry_timeout_cap_polls = 64;
    cfg.reliability.max_retries = 4;
    Device a(fabric, 0, cfg);
    Device b(fabric, 1, cfg);
    std::vector<std::byte> out(512, std::byte{0x5A});
    Request s = a.post_send(out, 1, 0, 1, false);
    const Request sends[] = {s};
    progress_pair_until(a, b, sends, 20000);
    return std::pair{a.frames_retried(), a.bytes_sent()};
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultInjectionStress, RendezvousRecvStallWatchdog) {
  // A sender that vanishes after its RTS: the receiver has matched,
  // registered the rendezvous, and sent CTS — but DATA never comes. Only
  // the receive-side stall watchdog can end this wait. Simulated by
  // simply never pumping the sender again after the RTS hits the wire.
  transport::Fabric fabric(2, transport::ChannelKind::kRing, 1 << 20);
  DeviceConfig cfg;
  cfg.eager_threshold = 256;
  cfg.reliability = tight_reliability();
  cfg.reliability.recv_stall_polls = 300;
  Device a(fabric, 0, cfg);
  Device b(fabric, 1, cfg);

  std::vector<std::byte> out(8192, std::byte{0x11});
  std::vector<std::byte> in(8192);
  Request r = b.post_recv(in, 0, 0, 1);
  Request s = a.post_send(out, 1, 0, 1, false);
  a.progress();  // RTS reaches the wire
  b.progress();  // match + CTS queued; rendezvous receive registered

  // Sender is now "dead": only the receiver keeps polling.
  bool completed = false;
  for (int i = 0; i < 5000 && !completed; ++i) {
    b.progress();
    completed = r->is_complete();
  }
  ASSERT_TRUE(completed) << "stalled rendezvous recv hung past the watchdog";
  EXPECT_EQ(r->error, ErrorCode::kCommError);
  (void)s;
}

// ---------------------------------------------------------------------------
// Reliability-off sanity: with the layer disabled and a clean wire, the
// counters stay zero and behaviour is the PR 1 trusting fast path.

TEST(FaultInjectionStress, DisabledLayerKeepsCountersZero) {
  transport::Fabric fabric(2, transport::ChannelKind::kRing, 1 << 20);
  Device a(fabric, 0, DeviceConfig{});
  Device b(fabric, 1, DeviceConfig{});
  std::vector<std::byte> out(4096, std::byte{0x7E});
  std::vector<std::byte> in(4096);
  Request r = b.post_recv(in, 0, 0, 1);
  Request s = a.post_send(out, 1, 0, 1, false);
  const Request reqs[] = {s, r};
  ASSERT_TRUE(progress_pair_until(a, b, reqs, 1000));
  EXPECT_EQ(in, out);
  EXPECT_EQ(a.frames_retried(), 0u);
  EXPECT_EQ(a.acks_sent(), 0u);
  EXPECT_EQ(b.frames_dropped(), 0u);
  EXPECT_EQ(b.checksum_failures(), 0u);
  EXPECT_EQ(b.duplicates_suppressed(), 0u);
  EXPECT_EQ(b.acks_sent(), 0u);
}

// Reliability ON over a clean wire: pure overhead mode must still deliver
// byte-exact with zero faults injected and zero frames lost.
TEST(FaultInjectionStress, ReliabilityOnCleanWire) {
  Scenario sc;
  sc.label = "clean-wire";
  sc.seed = 3;
  sc.faults = FaultConfig{};  // all rates zero
  sc.msg_bytes = 32 * 1024;
  sc.messages = 4;
  sc.eager_threshold = 4096;
  sc.max_packet_payload = 8 * 1024;
  sc.staged_copies = false;
  sc.sync = false;
  const Snapshot s = run_scenario(sc);
  EXPECT_EQ(s.wire_ab_injected, 0u);
  EXPECT_EQ(s.wire_ba_injected, 0u);
  EXPECT_EQ(s.a_retried, 0u);
  EXPECT_EQ(s.b_dropped, 0u);
  EXPECT_EQ(s.b_crc, 0u);
  EXPECT_EQ(s.b_dup, 0u);
}

}  // namespace
}  // namespace motor::mpi
