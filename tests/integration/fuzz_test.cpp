// Failure-injection sweeps: deserializers fed damaged inputs must fail
// with clean Status errors — never corrupt the heap, never crash the
// runtime. (The whole point of the integrity story, §2.4: a hostile or
// damaged buffer must not be able to break the object model.)
#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "motor/motor_serializer.hpp"
#include "vm/cli_serializer.hpp"
#include "vm/handles.hpp"
#include "vm/java_serializer.hpp"
#include "vm/vm.hpp"

namespace motor {
namespace {

struct Fixture {
  vm::Vm vm;
  vm::ManagedThread thread;
  const vm::MethodTable* ints;
  const vm::MethodTable* node;

  Fixture()
      : vm([] {
          vm::VmConfig c;
          c.profile = vm::RuntimeProfile::uncosted();
          c.heap.young_bytes = 1 << 20;
          return c;
        }()),
        thread(vm) {
    ints = vm.types().primitive_array(vm::ElementKind::kInt32);
    node = vm.types()
               .define_class("FNode")
               .transportable()
               .ref_field("data", ints, true)
               .ref_field("next", vm.types().object_type(), true)
               .field("id", vm::ElementKind::kInt32)
               .build();
  }

  vm::Obj make_list(int n) {
    vm::GcRoot head(thread, nullptr);
    for (int i = 0; i < n; ++i) {
      vm::GcRoot arr(thread, vm.heap().alloc_array(ints, 3));
      vm::Obj x = vm.heap().alloc_object(node);
      vm::set_ref_field(x, 0, arr.get());
      vm::set_ref_field(x, 8, head.get());
      head.set(x);
    }
    return head.get();
  }
};

class TruncationFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TruncationFuzzTest, TruncatedStreamsFailCleanly) {
  Fixture f;
  Prng prng(GetParam());
  vm::GcRoot list(f.thread, f.make_list(static_cast<int>(prng.next_in(1, 20))));

  mp::MotorSerializer motor_ser(f.vm);
  vm::CliBinarySerializer cli_ser(f.vm);
  vm::JavaSerializer java_ser(f.vm);

  ByteBuffer full;
  ASSERT_TRUE(motor_ser.serialize(list.get(), full).is_ok());
  ByteBuffer cli_full;
  ASSERT_TRUE(cli_ser.serialize(list.get(), cli_full).is_ok());
  ByteBuffer java_full;
  ASSERT_TRUE(java_ser.serialize(list.get(), java_full).is_ok());

  // Every strict prefix must be rejected without heap damage.
  for (int trial = 0; trial < 16; ++trial) {
    {
      ByteBuffer cut;
      cut.append(full.span().first(prng.next_below(full.size())));
      vm::Obj out = nullptr;
      EXPECT_FALSE(motor_ser.deserialize(cut, f.thread, &out).is_ok());
    }
    {
      ByteBuffer cut;
      cut.append(cli_full.span().first(prng.next_below(cli_full.size())));
      vm::Obj out = nullptr;
      EXPECT_FALSE(cli_ser.deserialize(cut, f.thread, &out).is_ok());
    }
    {
      ByteBuffer cut;
      cut.append(java_full.span().first(prng.next_below(java_full.size())));
      vm::Obj out = nullptr;
      EXPECT_FALSE(java_ser.deserialize(cut, f.thread, &out).is_ok());
    }
  }
  f.vm.heap().collect();
  f.vm.heap().verify_heap();  // the heap survived every rejection intact
}

INSTANTIATE_TEST_SUITE_P(Seeds, TruncationFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(FuzzTest, UnknownTypeNameRejected) {
  Fixture sender;
  vm::GcRoot list(sender.thread, sender.make_list(3));
  mp::MotorSerializer ser(sender.vm);
  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(list.get(), buf).is_ok());

  // A receiver VM that never defined FNode.
  vm::VmConfig cfg;
  cfg.profile = vm::RuntimeProfile::uncosted();
  vm::Vm receiver(cfg);
  vm::ManagedThread thread(receiver);
  mp::MotorSerializer rser(receiver);
  buf.seek(0);
  vm::Obj out = nullptr;
  const Status st = rser.deserialize(buf, thread, &out);
  EXPECT_EQ(st.code(), ErrorCode::kSerialization);
  receiver.heap().verify_heap();
}

TEST(FuzzTest, OutOfRangeObjectRefRejected) {
  Fixture f;
  vm::GcRoot list(f.thread, f.make_list(2));
  mp::MotorSerializer ser(f.vm);
  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(list.get(), buf).is_ok());

  // Corrupt every plausible 4-byte window into a huge object index and
  // require a clean failure or a clean success (a flip may land in pure
  // payload bytes) — but never a crash or heap corruption.
  Prng prng(77);
  for (int trial = 0; trial < 64; ++trial) {
    ByteBuffer evil;
    evil.append(buf.span());
    const std::size_t at = 8 + prng.next_below(evil.size() - 12);
    evil.overwrite_at(at, std::int32_t{0x7FFFFFF0});
    vm::Obj out = nullptr;
    (void)ser.deserialize(evil, f.thread, &out);  // status may be either
  }
  f.vm.heap().collect();
  f.vm.heap().verify_heap();
}

TEST(FuzzTest, EmptyAndGarbageHeadersRejectedEverywhere) {
  Fixture f;
  mp::MotorSerializer motor_ser(f.vm);
  vm::CliBinarySerializer cli_ser(f.vm);
  vm::JavaSerializer java_ser(f.vm);

  ByteBuffer empty;
  vm::Obj out = nullptr;
  EXPECT_FALSE(motor_ser.deserialize(empty, f.thread, &out).is_ok());
  empty.clear();
  EXPECT_FALSE(cli_ser.deserialize(empty, f.thread, &out).is_ok());
  empty.clear();
  EXPECT_FALSE(java_ser.deserialize(empty, f.thread, &out).is_ok());

  ByteBuffer garbage;
  for (int i = 0; i < 64; ++i) garbage.put_u8(static_cast<std::uint8_t>(i));
  garbage.seek(0);
  EXPECT_FALSE(motor_ser.deserialize(garbage, f.thread, &out).is_ok());
  garbage.seek(0);
  EXPECT_FALSE(cli_ser.deserialize(garbage, f.thread, &out).is_ok());
  garbage.seek(0);
  EXPECT_FALSE(java_ser.deserialize(garbage, f.thread, &out).is_ok());
}

}  // namespace
}  // namespace motor
