// Fault injection over REAL transports (ctest -L "fault;procs"): the
// deterministic fault suite's machinery pointed at kernel-backed socket
// channels and shared-memory rings instead of in-process byte queues.
//
// A Fabric link factory hands every non-loopback link a SocketChannel
// over an AF_UNIX socketpair with a deliberately tiny SO_SNDBUF (or a
// POSIX shm ring in kBoth mode), and FaultyChannel decorators stack on
// top exactly as the thread-mode suite stacks them on rings. The devices
// are driven single-threaded through progress_pair_until, so the write/
// read syscall sequence — and therefore every kernel-buffer short write
// and every PRNG fault decision — is a pure function of the scenario.
// Each scenario runs twice and must produce bit-identical device and
// fault-stat counters, proving that "real wire" does not mean
// "nondeterministic test".
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/prng.hpp"
#include "mpi/device.hpp"
#include "mpi/progress.hpp"
#include "transport/fabric.hpp"
#include "transport/faulty_channel.hpp"
#include "transport/shm_channel.hpp"
#include "transport/socket_channel.hpp"

namespace motor::mpi {
namespace {

using transport::FaultConfig;
using transport::FaultyChannel;

enum class Wire { kSocket, kShm };

struct Scenario {
  const char* label;
  Wire wire;
  std::uint64_t seed;
  FaultConfig faults;          // both directions, distinct seeds
  std::size_t msg_bytes;
  int messages;
  std::size_t eager_threshold;
  std::size_t max_packet_payload;
};

struct Snapshot {
  std::uint64_t a_sent = 0, a_recv = 0, b_sent = 0, b_recv = 0;
  std::uint64_t a_dropped = 0, a_retried = 0, a_crc = 0, a_dup = 0;
  std::uint64_t b_dropped = 0, b_retried = 0, b_crc = 0, b_dup = 0;
  std::uint64_t wire_ab_injected = 0, wire_ba_injected = 0;
  std::uint64_t wire_ab_frames = 0, wire_ba_frames = 0;

  bool operator==(const Snapshot&) const = default;

  [[nodiscard]] std::string str() const {
    std::ostringstream os;
    os << "a[sent=" << a_sent << " recv=" << a_recv << " drop=" << a_dropped
       << " retry=" << a_retried << " crc=" << a_crc << " dup=" << a_dup
       << "] b[sent=" << b_sent << " recv=" << b_recv << " drop=" << b_dropped
       << " retry=" << b_retried << " crc=" << b_crc << " dup=" << b_dup
       << "] wire[ab=" << wire_ab_injected << "/" << wire_ab_frames
       << " ba=" << wire_ba_injected << "/" << wire_ba_frames << "]";
    return os.str();
  }
};

ReliabilityConfig tight_reliability() {
  ReliabilityConfig rc;
  rc.enabled = true;
  rc.retry_timeout_polls = 64;
  rc.retry_timeout_cap_polls = 1024;
  rc.max_retries = 64;            // generous: scenarios must SUCCEED
  rc.recv_stall_polls = 1 << 20;  // watchdog must not fire spuriously
  return rc;
}

void fill_pattern(std::vector<std::byte>& buf, std::uint64_t seed) {
  Prng gen(seed * 0x9E3779B97F4A7C15ull + 1);
  for (std::size_t i = 0; i < buf.size(); i += 8) {
    const std::uint64_t v = gen.next_u64();
    const std::size_t n = std::min<std::size_t>(8, buf.size() - i);
    std::memcpy(buf.data() + i, &v, n);
  }
}

std::string unique_shm_name() {
  static int counter = 0;
  return "/motor_pf_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++);
}

transport::LinkFactory wire_factory(Wire wire) {
  // 4 KiB asks for the kernel's SO_SNDBUF floor: small enough that
  // multi-KiB gathers hit genuine EAGAIN short writes mid-scenario.
  if (wire == Wire::kSocket) {
    return [](int, int) -> std::unique_ptr<transport::Channel> {
      return transport::SocketChannel::make_loopback_pair(4096);
    };
  }
  return [](int, int) -> std::unique_ptr<transport::Channel> {
    return transport::ShmChannel::create(unique_shm_name(), 4096,
                                         transport::ShmChannel::Role::kBoth);
  };
}

Snapshot run_scenario(const Scenario& sc) {
  transport::Fabric fabric(2, transport::ChannelKind::kRing, 1 << 20);
  fabric.set_link_factory(wire_factory(sc.wire));
  FaultConfig ab = sc.faults;
  ab.seed = sc.seed;
  FaultConfig ba = sc.faults;
  ba.seed = sc.seed ^ 0xABCDEF0123456789ull;  // hurt acks differently
  FaultyChannel* wire_ab = fabric.inject_faults(0, 1, ab);
  FaultyChannel* wire_ba = fabric.inject_faults(1, 0, ba);

  DeviceConfig cfg;
  cfg.eager_threshold = sc.eager_threshold;
  cfg.max_packet_payload = sc.max_packet_payload;
  cfg.reliability = tight_reliability();
  Device a(fabric, 0, cfg);
  Device b(fabric, 1, cfg);

  std::vector<std::vector<std::byte>> outs(
      static_cast<std::size_t>(sc.messages));
  std::vector<std::vector<std::byte>> ins(
      static_cast<std::size_t>(sc.messages));
  std::vector<Request> reqs;
  for (int m = 0; m < sc.messages; ++m) {
    const auto i = static_cast<std::size_t>(m);
    outs[i].resize(sc.msg_bytes);
    fill_pattern(outs[i], sc.seed + static_cast<std::uint64_t>(m));
    ins[i].assign(sc.msg_bytes, std::byte{0});
    reqs.push_back(b.post_recv(ins[i], 0, m, 1));
  }
  for (int m = 0; m < sc.messages; ++m) {
    reqs.push_back(
        a.post_send(outs[static_cast<std::size_t>(m)], 1, m, 1, false));
  }

  const bool done = progress_pair_until(a, b, reqs, /*max_rounds=*/400000);
  if (!done) {
    a.dump_state(stderr);
    b.dump_state(stderr);
  }
  EXPECT_TRUE(done) << sc.label << " seed=" << sc.seed
                    << ": requests still pending at deadline (hang)";

  for (int m = 0; m < sc.messages && done; ++m) {
    const auto i = static_cast<std::size_t>(m);
    const Request& r = reqs[i];
    EXPECT_EQ(r->error, ErrorCode::kSuccess)
        << sc.label << " seed=" << sc.seed << " msg=" << m;
    EXPECT_TRUE(ins[i] == outs[i])
        << sc.label << " seed=" << sc.seed << " msg=" << m
        << ": delivered bytes differ from sent bytes";
  }

  Snapshot s;
  s.a_sent = a.bytes_sent();
  s.a_recv = a.bytes_received();
  s.b_sent = b.bytes_sent();
  s.b_recv = b.bytes_received();
  s.a_dropped = a.frames_dropped();
  s.a_retried = a.frames_retried();
  s.a_crc = a.checksum_failures();
  s.a_dup = a.duplicates_suppressed();
  s.b_dropped = b.frames_dropped();
  s.b_retried = b.frames_retried();
  s.b_crc = b.checksum_failures();
  s.b_dup = b.duplicates_suppressed();
  s.wire_ab_injected = wire_ab->stats().injected();
  s.wire_ba_injected = wire_ba->stats().injected();
  s.wire_ab_frames = wire_ab->stats().frames_total;
  s.wire_ba_frames = wire_ba->stats().frames_total;
  return s;
}

void run_scenario_twice(const Scenario& sc) {
  SCOPED_TRACE(sc.label);
  const Snapshot first = run_scenario(sc);
  if (::testing::Test::HasFailure()) return;
  const Snapshot second = run_scenario(sc);
  EXPECT_EQ(first, second)
      << sc.label << " seed=" << sc.seed << " is nondeterministic:\n  run1 "
      << first.str() << "\n  run2 " << second.str();
}

FaultConfig chaos_mix() {
  FaultConfig f;
  f.drop_rate = 0.03;
  f.truncate_rate = 0.02;
  f.duplicate_rate = 0.03;
  f.bitflip_rate = 0.02;
  f.short_write_rate = 0.10;
  return f;
}

TEST(ProcFaultTest, SocketEagerChaosIsDeterministic) {
  Scenario sc{"socket-eager-chaos", Wire::kSocket, 7, chaos_mix(),
              /*msg_bytes=*/1500, /*messages=*/24,
              /*eager_threshold=*/8192, /*max_packet_payload=*/1024};
  run_scenario_twice(sc);
}

TEST(ProcFaultTest, SocketRendezvousChaosIsDeterministic) {
  Scenario sc{"socket-rndv-chaos", Wire::kSocket, 11, chaos_mix(),
              /*msg_bytes=*/12000, /*messages=*/6,
              /*eager_threshold=*/512, /*max_packet_payload=*/2048};
  run_scenario_twice(sc);
}

TEST(ProcFaultTest, SocketShortWritesOnlyIsDeterministic) {
  FaultConfig f;
  f.short_write_rate = 0.35;  // hammer the partial-commit resume path
  Scenario sc{"socket-short-writes", Wire::kSocket, 23, f,
              /*msg_bytes=*/3000, /*messages=*/16,
              /*eager_threshold=*/8192, /*max_packet_payload=*/1024};
  run_scenario_twice(sc);
}

TEST(ProcFaultTest, ShmEagerChaosIsDeterministic) {
  Scenario sc{"shm-eager-chaos", Wire::kShm, 31, chaos_mix(),
              /*msg_bytes=*/1500, /*messages=*/24,
              /*eager_threshold=*/8192, /*max_packet_payload=*/1024};
  run_scenario_twice(sc);
}

TEST(ProcFaultTest, ShmRendezvousChaosIsDeterministic) {
  Scenario sc{"shm-rndv-chaos", Wire::kShm, 37, chaos_mix(),
              /*msg_bytes=*/12000, /*messages=*/6,
              /*eager_threshold=*/512, /*max_packet_payload=*/2048};
  run_scenario_twice(sc);
}

// Clean wires under the same harness: a sanity floor proving the socket
// and shm transports deliver byte-exact with reliability enabled and no
// injected faults (any drop/crc/retry counter firing here is a transport
// bug, not chaos).
TEST(ProcFaultTest, CleanWiresDeliverExactly) {
  for (const Wire wire : {Wire::kSocket, Wire::kShm}) {
    Scenario sc{wire == Wire::kSocket ? "socket-clean" : "shm-clean", wire,
                41, FaultConfig{},
                /*msg_bytes=*/6000, /*messages=*/10,
                /*eager_threshold=*/2048, /*max_packet_payload=*/1500};
    const Snapshot s = run_scenario(sc);
    EXPECT_EQ(s.wire_ab_injected, 0u);
    EXPECT_EQ(s.wire_ba_injected, 0u);
    EXPECT_EQ(s.a_crc, 0u) << sc.label;
    EXPECT_EQ(s.b_crc, 0u) << sc.label;
    EXPECT_EQ(s.b_dup, 0u) << sc.label;
  }
}

}  // namespace
}  // namespace motor::mpi
