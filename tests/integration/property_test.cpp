// Property-style sweeps (TEST_P) over randomized workloads:
//   * serializer equivalence: all three serializers round-trip identical
//     random graphs to isomorphic results;
//   * transport identity: random payloads arrive bit-identical across
//     every binding, for any size and channel kind;
//   * GC invariance: random mutation/collection interleavings keep the
//     heap verifiable and reachable data intact.
#include <gtest/gtest.h>

#include "baselines/indiana_bindings.hpp"
#include "common/prng.hpp"
#include "motor/motor_serializer.hpp"
#include "motor/motor_runtime.hpp"
#include "transport/faulty_channel.hpp"
#include "transport/ring_channel.hpp"
#include "vm/cli_serializer.hpp"
#include "vm/java_serializer.hpp"

namespace motor {
namespace {

struct GraphTypes {
  const vm::MethodTable* ints;
  const vm::MethodTable* node;
  const vm::MethodTable* node_array;

  explicit GraphTypes(vm::Vm& vm) {
    ints = vm.types().primitive_array(vm::ElementKind::kInt32);
    node = vm.types()
               .define_class("GNode")
               .ref_field("data", ints, true)
               .ref_field("left", vm.types().object_type(), true)
               .ref_field("right", vm.types().object_type(), true)
               .field("tag", vm::ElementKind::kInt64)
               .build();
    node_array = vm.types().ref_array(node);
  }
};

/// Random DAG (possibly with shared nodes and cycles) of `n` nodes.
vm::Obj make_random_graph(vm::Vm& vm, vm::ManagedThread& thread,
                          const GraphTypes& t, Prng& prng, int n) {
  vm::RootRange nodes(thread);
  for (int i = 0; i < n; ++i) {
    vm::GcRoot data(thread,
                    vm.heap().alloc_array(t.ints, prng.next_in(0, 6)));
    for (std::int64_t k = 0; k < vm::array_length(data.get()); ++k) {
      vm::set_element<std::int32_t>(
          data.get(), k, static_cast<std::int32_t>(prng.next_u64()));
    }
    vm::Obj x = vm.heap().alloc_object(t.node);
    vm::set_ref_field(x, t.node->field_named("data")->offset(), data.get());
    vm::set_field<std::int64_t>(x, t.node->field_named("tag")->offset(),
                                static_cast<std::int64_t>(i));
    nodes.add(x);
  }
  // Random edges among already-created nodes (cycles allowed: edges may
  // point anywhere).
  for (int i = 0; i < n; ++i) {
    vm::Obj x = nodes.at(static_cast<std::size_t>(i));
    if (prng.next_bool(0.7)) {
      vm::set_ref_field(x, t.node->field_named("left")->offset(),
                        nodes.at(prng.next_below(static_cast<std::uint64_t>(n))));
    }
    if (prng.next_bool(0.7)) {
      vm::set_ref_field(x, t.node->field_named("right")->offset(),
                        nodes.at(prng.next_below(static_cast<std::uint64_t>(n))));
    }
  }
  return nodes.at(0);
}

/// Structural equality up to isomorphism (parallel DFS with a visited map).
bool graphs_equal(const GraphTypes& t, vm::Obj a, vm::Obj b) {
  std::unordered_map<vm::Obj, vm::Obj> paired;
  std::vector<std::pair<vm::Obj, vm::Obj>> work{{a, b}};
  while (!work.empty()) {
    auto [x, y] = work.back();
    work.pop_back();
    if (x == nullptr || y == nullptr) {
      if (x != y) return false;
      continue;
    }
    auto it = paired.find(x);
    if (it != paired.end()) {
      if (it->second != y) return false;
      continue;
    }
    paired.emplace(x, y);
    if (vm::obj_mt(x)->name() != vm::obj_mt(y)->name()) return false;
    if (vm::obj_mt(x)->is_array()) {
      if (vm::array_length(x) != vm::array_length(y)) return false;
      if (vm::obj_mt(x)->element_kind() == vm::ElementKind::kObjectRef) {
        for (std::int64_t i = 0; i < vm::array_length(x); ++i) {
          work.emplace_back(vm::get_ref_element(x, i),
                            vm::get_ref_element(y, i));
        }
      } else if (std::memcmp(vm::array_data(x), vm::array_data(y),
                             vm::array_payload_bytes(x)) != 0) {
        return false;
      }
      continue;
    }
    const auto tag_off = t.node->field_named("tag")->offset();
    if (vm::get_field<std::int64_t>(x, tag_off) !=
        vm::get_field<std::int64_t>(y, tag_off)) {
      return false;
    }
    for (const char* f : {"data", "left", "right"}) {
      const auto off = t.node->field_named(f)->offset();
      work.emplace_back(vm::get_ref_field(x, off), vm::get_ref_field(y, off));
    }
  }
  return true;
}

vm::VmConfig uncosted_vm() {
  vm::VmConfig c;
  c.profile = vm::RuntimeProfile::uncosted();
  c.heap.young_bytes = 1 << 20;
  return c;
}

class SerializerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SerializerPropertyTest, AllSerializersRoundTripRandomGraphs) {
  vm::Vm vm(uncosted_vm());
  vm::ManagedThread thread(vm);
  GraphTypes types(vm);
  Prng prng(GetParam());
  const int n = static_cast<int>(prng.next_in(1, 60));
  vm::GcRoot graph(thread, make_random_graph(vm, thread, types, prng, n));

  // Motor serializer (both visited modes).
  for (mp::VisitedMode mode :
       {mp::VisitedMode::kLinear, mp::VisitedMode::kHashed}) {
    mp::MotorSerializer ser(vm, mode);
    ByteBuffer buf;
    ASSERT_TRUE(ser.serialize(graph.get(), buf).is_ok());
    buf.seek(0);
    vm::Obj copy = nullptr;
    ASSERT_TRUE(ser.deserialize(buf, thread, &copy).is_ok());
    EXPECT_TRUE(graphs_equal(types, graph.get(), copy));
  }
  // CLI serializer.
  {
    vm::CliBinarySerializer ser(vm);
    ByteBuffer buf;
    ASSERT_TRUE(ser.serialize(graph.get(), buf).is_ok());
    buf.seek(0);
    vm::Obj copy = nullptr;
    ASSERT_TRUE(ser.deserialize(buf, thread, &copy).is_ok());
    EXPECT_TRUE(graphs_equal(types, graph.get(), copy));
  }
  // Java serializer (graphs here are < recursion limit).
  {
    vm::JavaSerializer ser(vm);
    ByteBuffer buf;
    ASSERT_TRUE(ser.serialize(graph.get(), buf).is_ok());
    buf.seek(0);
    vm::Obj copy = nullptr;
    ASSERT_TRUE(ser.deserialize(buf, thread, &copy).is_ok());
    EXPECT_TRUE(graphs_equal(types, graph.get(), copy));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializerPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

class GcPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GcPropertyTest, RandomMutationAndCollectionKeepsHeapCoherent) {
  vm::VmConfig cfg = uncosted_vm();
  cfg.heap.young_bytes = 32 * 1024;
  cfg.heap.elder_sweep_interval = 2;
  vm::Vm vm(cfg);
  vm::ManagedThread thread(vm);
  GraphTypes types(vm);
  Prng prng(GetParam());

  vm::RootRange keep(thread);
  std::vector<std::int64_t> expected_tags;
  for (int step = 0; step < 300; ++step) {
    const double dice = prng.next_double();
    if (dice < 0.5) {
      // Allocate and keep.
      vm::Obj x = vm.heap().alloc_object(types.node);
      const auto tag = static_cast<std::int64_t>(prng.next_u64() >> 1);
      vm::set_field(x, types.node->field_named("tag")->offset(), tag);
      keep.add(x);
      expected_tags.push_back(tag);
    } else if (dice < 0.8) {
      // Garbage allocation.
      vm.heap().alloc_array(types.ints,
                            static_cast<std::int64_t>(prng.next_below(200)));
    } else if (dice < 0.9 && keep.size() >= 2) {
      // Random re-linking between kept nodes (may form cycles).
      vm::Obj from = keep.at(prng.next_below(keep.size()));
      vm::Obj to = keep.at(prng.next_below(keep.size()));
      vm::set_ref_field(from, types.node->field_named("left")->offset(), to);
    } else if (dice < 0.95) {
      vm.heap().collect();
    } else if (keep.size() > 0) {
      // Pin something briefly across a collection.
      vm::Obj victim = keep.at(prng.next_below(keep.size()));
      vm.heap().pin(victim);
      vm.heap().collect();
      vm.heap().unpin(victim);
    }
  }
  vm.heap().collect(/*force_elder_sweep=*/true);
  vm.heap().verify_heap();
  for (std::size_t i = 0; i < keep.size(); ++i) {
    EXPECT_EQ(vm::get_field<std::int64_t>(
                  keep.at(i), types.node->field_named("tag")->offset()),
              expected_tags[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcPropertyTest,
                         ::testing::Range<std::uint64_t>(100, 112));

// ---------------------------------------------------------------------------
// Gather-path wire identity: serialize_gather's SpanVec, pushed through a
// FaultyChannel with every fault rate at zero (the decorator in the data
// path but injecting nothing), must land byte-identical to the flat
// serialize() form — and the drained bytes must deserialize back to an
// isomorphic graph. 1000 seeded cases.

TEST(GatherWirePropertyTest, GatherThroughCleanFaultyChannelMatchesFlat) {
  vm::Vm vm(uncosted_vm());
  vm::ManagedThread thread(vm);
  GraphTypes types(vm);
  mp::MotorSerializer ser(vm, mp::VisitedMode::kHashed);

  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    Prng prng(seed * 0x2545F4914F6CDD1Dull + seed);
    const int n = static_cast<int>(prng.next_in(1, 24));
    vm::GcRoot graph(thread, make_random_graph(vm, thread, types, prng, n));

    ByteBuffer flat;
    ASSERT_TRUE(ser.serialize(graph.get(), flat).is_ok()) << "seed " << seed;

    mp::GatherRep rep;
    ASSERT_TRUE(ser.serialize_gather(graph.get(), rep).is_ok())
        << "seed " << seed;
    ASSERT_EQ(rep.total_bytes(), flat.size()) << "seed " << seed;
    // No allocation happens between here and the drain below, so the
    // in-place payload spans cannot move (no GC) without pinning.

    transport::FaultyChannel ch(
        std::make_unique<transport::RingChannel>(1 << 20),
        transport::FaultConfig{});  // all rates zero: decorator, no chaos
    ASSERT_EQ(ch.try_write_v(rep.spans.parts()), rep.total_bytes())
        << "seed " << seed;
    ASSERT_EQ(ch.stats().injected(), 0u);

    std::vector<std::byte> wire(rep.total_bytes());
    ASSERT_EQ(ch.try_read({wire.data(), wire.size()}), wire.size())
        << "seed " << seed;
    ASSERT_TRUE(std::equal(wire.begin(), wire.end(), flat.span().begin()))
        << "seed " << seed << ": gathered wire bytes differ from flat form";

    ByteBuffer in;
    in.append({wire.data(), wire.size()});
    in.seek(0);
    vm::Obj copy = nullptr;
    ASSERT_TRUE(ser.deserialize(in, thread, &copy).is_ok()) << "seed " << seed;
    EXPECT_TRUE(graphs_equal(types, graph.get(), copy)) << "seed " << seed;

    if (seed % 128 == 0) vm.heap().collect();
  }
}

struct TransportCase {
  std::uint64_t seed;
  std::size_t bytes;
  transport::ChannelKind kind;
};

class TransportPropertyTest : public ::testing::TestWithParam<TransportCase> {
};

TEST_P(TransportPropertyTest, PayloadArrivesBitIdenticalViaEveryBinding) {
  const TransportCase tc = GetParam();
  mpi::WorldConfig wc;
  wc.channel = tc.kind;
  mpi::World world(2, wc);
  world.run([&tc](mpi::RankCtx& ctx) {
    vm::Vm vm(uncosted_vm());
    vm::ManagedThread thread(vm);
    const vm::MethodTable* bytes_mt =
        vm.types().primitive_array(vm::ElementKind::kUInt8);
    const auto n = static_cast<std::int64_t>(tc.bytes);
    vm::GcRoot arr(thread, vm.heap().alloc_array(bytes_mt, n));

    Prng prng(tc.seed);
    if (ctx.comm_world().rank() == 0) {
      for (std::int64_t i = 0; i < n; ++i) {
        vm::set_element<std::uint8_t>(
            arr.get(), i, static_cast<std::uint8_t>(prng.next_u64()));
      }
      mp::MPDirect motor(vm, thread, ctx.comm_world());
      ASSERT_TRUE(motor.send(arr.get(), 1, 0).is_ok());
    } else {
      baselines::IndianaCommunicator indiana(vm, thread, ctx.comm_world());
      ASSERT_TRUE(indiana.recv(arr.get(), 0, 0).is_ok());
      for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ((vm::get_element<std::uint8_t>(arr.get(), i)),
                  static_cast<std::uint8_t>(prng.next_u64()))
            << "byte " << i;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndChannels, TransportPropertyTest,
    ::testing::Values(
        TransportCase{1, 1, transport::ChannelKind::kRing},
        TransportCase{2, 100, transport::ChannelKind::kRing},
        TransportCase{3, 4096, transport::ChannelKind::kRing},
        TransportCase{4, 70000, transport::ChannelKind::kRing},
        TransportCase{5, 300000, transport::ChannelKind::kRing},
        TransportCase{6, 100, transport::ChannelKind::kStream},
        TransportCase{7, 70000, transport::ChannelKind::kStream},
        TransportCase{8, 300000, transport::ChannelKind::kStream}),
    [](const auto& info) {
      return "s" + std::to_string(info.param.seed) + "_b" +
             std::to_string(info.param.bytes) + "_" +
             (info.param.kind == transport::ChannelKind::kRing ? "ring"
                                                               : "stream");
    });

}  // namespace
}  // namespace motor
