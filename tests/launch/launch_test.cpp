// Cross-process world tests (ctest -L procs): real rank PROCESSES wired
// over AF_UNIX sockets, TCP, and POSIX shm rings, driven through the
// motor_launch bootstrap. The crash tests are the reliability-layer's
// reason to exist made concrete: kill a rank mid-collective / mid-PS-push
// and require (a) survivors observe kCommError and exit by themselves,
// (b) the launcher reports every rank and exits non-zero, (c) nothing
// hangs — every launch here runs under its own watchdog, and the
// assertions bound wall time explicitly.
#include <gtest/gtest.h>

#include <string>

#include "launch/launch.hpp"
#include "pal/clock.hpp"

namespace motor::launch {
namespace {

// The rank program (tests/launch/rank_helper_main.cpp), path injected by
// CMake so discovery works from any working directory.
std::string helper() { return MOTOR_RANK_HELPER; }

LaunchConfig base_config(const std::string& transport, int ranks,
                         const std::string& mode) {
  LaunchConfig cfg;
  cfg.n_ranks = ranks;
  cfg.transport = transport;
  cfg.program = {helper(), mode};
  cfg.watchdog_ns = 120ull * 1000 * 1000 * 1000;
  // Crash runs: survivors should notice the dead peer in well under this.
  cfg.fail_grace_ns = 30ull * 1000 * 1000 * 1000;
  return cfg;
}

void expect_all_exit_zero(const LaunchResult& r) {
  EXPECT_EQ(r.exit_code, 0) << r.summary;
  EXPECT_FALSE(r.timed_out);
  for (const RankReport& rr : r.ranks) {
    EXPECT_TRUE(rr.status.exited) << r.summary;
    EXPECT_EQ(rr.status.exit_code, 0) << r.summary;
  }
}

TEST(LaunchTest, PingPongOverUnixSockets) {
  expect_all_exit_zero(launch_world(base_config("socket", 2, "pingpong")));
}

TEST(LaunchTest, PingPongOverTcp) {
  expect_all_exit_zero(launch_world(base_config("tcp", 2, "pingpong")));
}

TEST(LaunchTest, PingPongOverShm) {
  expect_all_exit_zero(launch_world(base_config("shm", 2, "pingpong")));
}

TEST(LaunchTest, CollectivesRunAcrossProcesses) {
  expect_all_exit_zero(launch_world(base_config("socket", 4, "collective")));
}

TEST(LaunchTest, CollectivesRunAcrossProcessesShm) {
  expect_all_exit_zero(launch_world(base_config("shm", 3, "collective")));
}

TEST(LaunchTest, PsPushPullAcrossProcesses) {
  expect_all_exit_zero(launch_world(base_config("socket", 3, "ps_push")));
}

// ---- crash-a-rank ----

void expect_crash_contained(const LaunchResult& r, int victim) {
  // Launcher: non-zero, not a watchdog timeout, per-rank report present.
  EXPECT_NE(r.exit_code, 0) << r.summary;
  EXPECT_FALSE(r.timed_out) << "survivors hung instead of failing fast:\n"
                            << r.summary;
  ASSERT_FALSE(r.ranks.empty());
  for (const RankReport& rr : r.ranks) {
    ASSERT_TRUE(rr.status.exited) << "rank " << rr.rank
                                  << " was killed, not self-exited:\n"
                                  << r.summary;
    if (rr.rank == victim) {
      EXPECT_EQ(rr.status.exit_code, 42) << r.summary;
    } else {
      // Survivors observed kCommError and exited 0 on their own (exit 3
      // = the error never surfaced, signal = the grace window expired).
      EXPECT_EQ(rr.status.exit_code, 0) << r.summary;
    }
  }
}

LaunchConfig crash_config(const std::string& transport, int ranks,
                          const std::string& mode, int victim) {
  LaunchConfig cfg = base_config(transport, ranks, mode);
  cfg.extra_env.push_back("MOTOR_CRASH_RANK=" + std::to_string(victim));
  cfg.extra_env.push_back("MOTOR_CRASH_ITER=5");
  return cfg;
}

TEST(LaunchCrashTest, RankDeathMidCollectiveOverSockets) {
  pal::Stopwatch watch;
  const LaunchResult r =
      launch_world(crash_config("socket", 4, "collective", 2));
  expect_crash_contained(r, 2);
  EXPECT_LT(watch.elapsed_ns(), 90ull * 1000 * 1000 * 1000);
}

TEST(LaunchCrashTest, RankDeathMidCollectiveOverShm) {
  pal::Stopwatch watch;
  const LaunchResult r = launch_world(crash_config("shm", 3, "collective", 1));
  expect_crash_contained(r, 1);
  EXPECT_LT(watch.elapsed_ns(), 90ull * 1000 * 1000 * 1000);
}

TEST(LaunchCrashTest, ServerDeathMidPsPush) {
  pal::Stopwatch watch;
  const LaunchResult r = launch_world(crash_config("socket", 3, "ps_push", 0));
  expect_crash_contained(r, 0);
  EXPECT_LT(watch.elapsed_ns(), 90ull * 1000 * 1000 * 1000);
}

TEST(LaunchTest, ReportsEveryRank) {
  const LaunchResult r = launch_world(base_config("socket", 3, "pingpong"));
  // 3-rank pingpong: ranks 2+ idle in the barrier; all must be reported.
  EXPECT_EQ(r.ranks.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(r.summary.find("rank " + std::to_string(i) + ":"),
              std::string::npos)
        << r.summary;
  }
}

}  // namespace
}  // namespace motor::launch
