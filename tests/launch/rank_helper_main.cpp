// Rank program exec'd by the cross-process launch tests (one binary,
// mode-selected by argv[1]):
//
//   pingpong    2 ranks; gathered sends + plain recv echo, data verified
//   collective  N ranks; allreduce loop, sums verified. With
//               MOTOR_CRASH_RANK/MOTOR_CRASH_ITER set, the victim rank
//               _exit(42)s mid-loop; SURVIVORS must then observe
//               kCommError (never a hang) and exit 0.
//   ps_push     N ranks; rank 0 is the PS shard, the rest push/pull.
//               With MOTOR_CRASH_RANK=0 the server _exit(42)s mid-apply;
//               workers must get kCommError from a PS op and exit 0.
//
// Exit codes: 0 expected outcome, 42 deliberate crash, 2 bad usage,
// 3 protocol violation (wrong data / expected error never surfaced),
// 1 unexpected exception (from launch::run_rank).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "launch/launch.hpp"
#include "motor/motor_runtime.hpp"
#include "mpi/collectives.hpp"
#include "mpi/pt2pt.hpp"
#include "ps/ps.hpp"

namespace {

using namespace motor;

int crash_rank() {
  const char* v = std::getenv("MOTOR_CRASH_RANK");
  return v != nullptr ? std::atoi(v) : -1;
}

int crash_iter() {
  const char* v = std::getenv("MOTOR_CRASH_ITER");
  return v != nullptr ? std::atoi(v) : 3;
}

int run_pingpong() {
  mpi::WorldConfig cfg;  // real wire: no modelled latency/bandwidth
  return motor::launch::run_rank(cfg, [](mpi::RankCtx& ctx) {
    mpi::Comm& comm = ctx.comm_world();
    constexpr int kIters = 50;
    constexpr std::size_t kBytes = 4096;
    std::vector<std::byte> buf(kBytes);
    if (ctx.world_rank() == 0) {
      // Gathered send: header + two payload halves, exercising
      // try_write_v over the real wire.
      std::vector<std::byte> payload(kBytes);
      for (std::size_t i = 0; i < kBytes; ++i) {
        payload[i] = static_cast<std::byte>(i * 7 + 13);
      }
      for (int it = 0; it < kIters; ++it) {
        SpanVec msg;
        msg.append(ByteSpan{payload.data(), kBytes / 2});
        msg.append(ByteSpan{payload.data() + kBytes / 2, kBytes / 2});
        MOTOR_CHECK(mpi::send_v(comm, msg, 1, 5) == ErrorCode::kSuccess,
                    "pingpong send failed");
        MOTOR_CHECK(mpi::recv(comm, buf.data(), kBytes, 1, 6) ==
                        ErrorCode::kSuccess,
                    "pingpong recv failed");
        MOTOR_CHECK(std::memcmp(buf.data(), payload.data(), kBytes) == 0,
                    "pingpong payload corrupted");
      }
    } else if (ctx.world_rank() == 1) {
      for (int it = 0; it < kIters; ++it) {
        MOTOR_CHECK(mpi::recv(comm, buf.data(), kBytes, 0, 5) ==
                        ErrorCode::kSuccess,
                    "pingpong recv failed");
        MOTOR_CHECK(mpi::send(comm, buf.data(), kBytes, 0, 6) ==
                        ErrorCode::kSuccess,
                    "pingpong echo failed");
      }
    }
    // Ranks >= 2 only participate in the barrier.
    MOTOR_CHECK(mpi::barrier(comm) == ErrorCode::kSuccess, "final barrier");
  });
}

int run_collective() {
  mpi::WorldConfig cfg;
  int outcome = 0;
  const int rc = motor::launch::run_rank(cfg, [&](mpi::RankCtx& ctx) {
    mpi::Comm& comm = ctx.comm_world();
    const int n = comm.size();
    const int me = comm.rank();
    const int victim = crash_rank();
    const int crash_at = crash_iter();
    constexpr int kIters = 60;
    bool saw_comm_error = false;
    std::vector<std::int32_t> in(256), out(256);
    for (int it = 0; it < kIters; ++it) {
      if (me == victim && it == crash_at) ::_exit(42);
      for (std::size_t k = 0; k < in.size(); ++k) {
        in[k] = me + static_cast<int>(k) + it;
      }
      const ErrorCode ec =
          mpi::allreduce(comm, in.data(), out.data(), in.size(),
                         mpi::Datatype::kInt32, mpi::ReduceOp::kSum);
      if (ec == ErrorCode::kCommError) {
        saw_comm_error = true;
        break;
      }
      if (ec != ErrorCode::kSuccess) {
        outcome = 3;
        return;
      }
      // sum over ranks of (r + k + it) = n*(k+it) + n(n-1)/2
      const std::int32_t base = n * (n - 1) / 2;
      for (std::size_t k = 0; k < out.size(); ++k) {
        const std::int32_t want =
            base + n * (static_cast<int>(k) + it);
        if (out[k] != want) {
          outcome = 3;
          return;
        }
      }
    }
    if (victim >= 0 && me != victim && !saw_comm_error) {
      outcome = 3;  // a dead peer must surface, never be survived silently
    }
  });
  return rc != 0 ? rc : outcome;
}

int run_ps_push() {
  mp::MotorWorldConfig mcfg;
  mcfg.vm.profile = vm::RuntimeProfile::uncosted();
  mcfg.vm.heap.young_bytes = 512 * 1024;
  int outcome = 0;
  const int rc =
      motor::launch::run_rank(mcfg.world, [&](mpi::RankCtx& rank_ctx) {
        mp::MotorContext ctx(rank_ctx, mcfg);
        const int victim = crash_rank();

        ps::PsConfig psc;
        psc.servers = 1;
        psc.flush_records = 8;
        psc.flush_bytes = 2048;
        psc.window_batches = 4;
        psc.serve_timeout_ns = 20ull * 1000 * 1000 * 1000;
        psc.op_timeout_ns = 20ull * 1000 * 1000 * 1000;
        int applies = 0;
        if (victim == 0) {
          // Kill the shard mid-push stream: the gate runs on the server's
          // comm thread before each apply cycle.
          psc.apply_gate = [&applies] {
            if (++applies == 4) ::_exit(42);
          };
        }
        ps::PsNode node(ctx, psc);
        if (node.is_server()) {
          const Status st = node.server().Serve();
          if (victim < 0 && !st.is_ok()) outcome = 3;
          return;
        }
        ps::PsClient& cl = node.client();
        const std::vector<float> unit(16, 1.0f);
        bool saw_comm_error = false;
        for (int i = 0; i < 400; ++i) {
          Status st = cl.Push(7, unit);
          if (st.is_ok() && i % 50 == 49) st = cl.Flush();
          if (!st.is_ok()) {
            if (st.code() == ErrorCode::kCommError) saw_comm_error = true;
            break;
          }
        }
        if (victim >= 0) {
          if (!saw_comm_error) outcome = 3;
          return;  // no Close(): the server is gone
        }
        std::vector<float> got;
        if (!cl.Flush().is_ok() || !cl.Pull(7, &got).is_ok() ||
            got.size() != 16) {
          outcome = 3;
        }
        if (!cl.Close().is_ok()) outcome = 3;
      });
  return rc != 0 ? rc : outcome;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: rank_helper pingpong|collective|ps_push\n");
    return 2;
  }
  const std::string mode = argv[1];
  if (mode == "pingpong") return run_pingpong();
  if (mode == "collective") return run_collective();
  if (mode == "ps_push") return run_ps_push();
  std::fprintf(stderr, "rank_helper: unknown mode %s\n", mode.c_str());
  return 2;
}
