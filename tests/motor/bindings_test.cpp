// End-to-end System.MP bindings over two Motor ranks: the §4.2.1 surface.
#include "motor/motor_runtime.hpp"

#include "vm/assembler.hpp"

#include <gtest/gtest.h>

namespace motor::mp {
namespace {

MotorWorldConfig test_config() {
  MotorWorldConfig c;
  c.vm.profile = vm::RuntimeProfile::uncosted();
  c.vm.heap.young_bytes = 256 * 1024;
  return c;
}

vm::Obj make_ints(MotorContext& ctx, int n, int base) {
  const vm::MethodTable* mt =
      ctx.vm().types().primitive_array(vm::ElementKind::kInt32);
  vm::Obj arr = ctx.vm().heap().alloc_array(mt, n);
  for (int i = 0; i < n; ++i) {
    vm::set_element<std::int32_t>(arr, i, base + i);
  }
  return arr;
}

TEST(BindingsTest, SendRecvPrimitiveArray) {
  run_motor_world(test_config(), [](MotorContext& ctx) {
    vm::GcRoot arr(ctx.thread(), make_ints(ctx, 16, ctx.rank() == 0 ? 100 : 0));
    if (ctx.rank() == 0) {
      ASSERT_TRUE(ctx.mp().Send(arr.get(), 1, 5).is_ok());
    } else {
      MpStatus st;
      ASSERT_TRUE(ctx.mp().Recv(arr.get(), 0, 5, &st).is_ok());
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 5);
      EXPECT_EQ(st.count_bytes, 64);
      for (int i = 0; i < 16; ++i) {
        EXPECT_EQ((vm::get_element<std::int32_t>(arr.get(), i)), 100 + i);
      }
    }
  });
}

TEST(BindingsTest, SendRecvValueObject) {
  run_motor_world(test_config(), [](MotorContext& ctx) {
    const vm::MethodTable* mt = ctx.vm()
                                    .types()
                                    .define_class("Sample")
                                    .field("a", vm::ElementKind::kDouble)
                                    .field("b", vm::ElementKind::kInt64)
                                    .build();
    vm::GcRoot obj(ctx.thread(), ctx.vm().heap().alloc_object(mt));
    if (ctx.rank() == 0) {
      vm::set_field(obj.get(), 0, 3.25);
      vm::set_field<std::int64_t>(obj.get(), 8, -99);
      ASSERT_TRUE(ctx.mp().Send(obj.get(), 1, 0).is_ok());
    } else {
      ASSERT_TRUE(ctx.mp().Recv(obj.get(), 0, 0).is_ok());
      EXPECT_DOUBLE_EQ(vm::get_field<double>(obj.get(), 0), 3.25);
      EXPECT_EQ(vm::get_field<std::int64_t>(obj.get(), 8), -99);
    }
  });
}

TEST(BindingsTest, ReferenceTypeRejectedByRegularSend) {
  run_motor_world(test_config(), [](MotorContext& ctx) {
    const vm::MethodTable* mt =
        ctx.vm()
            .types()
            .define_class("Reffy")
            .ref_field("r", ctx.vm().types().object_type())
            .build();
    vm::GcRoot obj(ctx.thread(), ctx.vm().heap().alloc_object(mt));
    // Both ranks observe the rejection locally; nothing is transmitted.
    EXPECT_EQ(ctx.mp().Send(obj.get(), 1 - ctx.rank(), 0).code(),
              ErrorCode::kIntegrity);
  });
}

TEST(BindingsTest, ArrayWindowOverloads) {
  run_motor_world(test_config(), [](MotorContext& ctx) {
    vm::GcRoot arr(ctx.thread(), make_ints(ctx, 20, ctx.rank() == 0 ? 0 : -1));
    if (ctx.rank() == 0) {
      ASSERT_TRUE(ctx.mp().Send(arr.get(), 5, 10, 1, 0).is_ok());
    } else {
      MpStatus st;
      ASSERT_TRUE(ctx.mp().Recv(arr.get(), 3, 10, 0, 0, &st).is_ok());
      EXPECT_EQ(st.count_bytes, 40);
      // Elements [5,15) of the sender landed at [3,13) here.
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ((vm::get_element<std::int32_t>(arr.get(), 3 + i)), 5 + i);
      }
      // Elements outside the receive window keep their initial -1+i fill.
      EXPECT_EQ((vm::get_element<std::int32_t>(arr.get(), 0)), -1);
      EXPECT_EQ((vm::get_element<std::int32_t>(arr.get(), 13)), -1 + 13);
    }
  });
}

TEST(BindingsTest, SsendAndWildcardRecv) {
  run_motor_world(test_config(), [](MotorContext& ctx) {
    vm::GcRoot arr(ctx.thread(), make_ints(ctx, 4, 7));
    if (ctx.rank() == 0) {
      ASSERT_TRUE(ctx.mp().Ssend(arr.get(), 1, 9).is_ok());
    } else {
      MpStatus st;
      ASSERT_TRUE(ctx.mp().Recv(arr.get(), kAnySource, kAnyTag, &st).is_ok());
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 9);
    }
  });
}

TEST(BindingsTest, NonBlockingRoundTrip) {
  run_motor_world(test_config(), [](MotorContext& ctx) {
    vm::GcRoot arr(ctx.thread(), make_ints(ctx, 64, ctx.rank() * 1000));
    const int peer = 1 - ctx.rank();
    MPRequest s = ctx.mp().ISend(arr.get(), peer, 1);
    vm::GcRoot in(ctx.thread(), make_ints(ctx, 64, 0));
    MPRequest r = ctx.mp().IRecv(in.get(), peer, 1);
    ASSERT_TRUE(s.valid());
    ASSERT_TRUE(r.valid());
    ASSERT_TRUE(ctx.mp().Wait(s).is_ok());
    MpStatus st;
    ASSERT_TRUE(ctx.mp().Wait(r, &st).is_ok());
    EXPECT_EQ(st.source, peer);
    EXPECT_EQ((vm::get_element<std::int32_t>(in.get(), 3)), peer * 1000 + 3);
  });
}

TEST(BindingsTest, TestPollsToCompletion) {
  run_motor_world(test_config(), [](MotorContext& ctx) {
    vm::GcRoot arr(ctx.thread(), make_ints(ctx, 8, ctx.rank()));
    const int peer = 1 - ctx.rank();
    MPRequest s = ctx.mp().ISend(arr.get(), peer, 2);
    vm::GcRoot in(ctx.thread(), make_ints(ctx, 8, -5));
    MPRequest r = ctx.mp().IRecv(in.get(), peer, 2);
    while (!ctx.mp().Test(r)) {
    }
    EXPECT_EQ((vm::get_element<std::int32_t>(in.get(), 0)), peer);
    ctx.mp().Wait(s);
  });
}

TEST(BindingsTest, BarrierAndBcast) {
  run_motor_world(test_config(), [](MotorContext& ctx) {
    ASSERT_TRUE(ctx.mp().Barrier().is_ok());
    vm::GcRoot arr(ctx.thread(), make_ints(ctx, 6, ctx.rank() == 0 ? 50 : 0));
    ASSERT_TRUE(ctx.mp().Bcast(arr.get(), 0).is_ok());
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ((vm::get_element<std::int32_t>(arr.get(), i)), 50 + i);
    }
  });
}

TEST(BindingsTest, EveryOperationCrossesTheFCallBoundary) {
  run_motor_world(test_config(), [](MotorContext& ctx) {
    vm::GcRoot arr(ctx.thread(), make_ints(ctx, 4, 0));
    const int peer = 1 - ctx.rank();
    if (ctx.rank() == 0) {
      ctx.mp().Send(arr.get(), peer, 0);
    } else {
      ctx.mp().Recv(arr.get(), peer, 0);
    }
    ctx.mp().Barrier();
    EXPECT_EQ(ctx.mp().direct().fcall_invocations(), 2u);
  });
}

TEST(BindingsTest, InterpretedProgramUsesMpFCalls) {
  // Managed bytecode calling System.MP through InternalCall — the Figure 8
  // path: managed Recv -> MPDirect InternalCall -> runtime FCall.
  run_motor_world(test_config(), [](MotorContext& ctx) {
    const int first = ctx.register_mp_fcalls();
    const int send_idx = ctx.vm().fcalls().find("MP.Send");
    const int recv_idx = ctx.vm().fcalls().find("MP.Recv");
    ASSERT_GE(first, 0);
    ASSERT_GE(send_idx, 0);
    ASSERT_GE(recv_idx, 0);

    const vm::MethodTable* ints =
        ctx.vm().types().primitive_array(vm::ElementKind::kInt32);
    vm::Program p;
    const int arr_type = p.add_type(ints);

    vm::MethodAssembler a("main", 2, 1);  // args: my rank, peer
    const int receiver = a.new_label();
    const int done = a.new_label();
    a.ldc_i4(8).newarr(arr_type).stloc(2);
    a.ldloc(0).brtrue(receiver);  // rank != 0 -> receive
    // rank 0: arr[0] = 777; MP.Send(arr, peer, 3)
    a.ldloc(2).ldc_i4(0).ldc_i4(777).stelem();
    a.ldloc(2).ldloc(1).ldc_i4(3).call_native(send_idx, 3).pop();
    a.br(done);
    a.bind(receiver);
    a.ldloc(2).ldloc(1).ldc_i4(3).call_native(recv_idx, 3).pop();
    a.bind(done);
    a.ldloc(2).ldc_i4(0).ldelem().ret();
    p.add_method(a.build());

    vm::Interpreter interp(ctx.vm(), ctx.thread());
    const vm::Value args[] = {vm::Value::from_i32(ctx.rank()),
                              vm::Value::from_i32(1 - ctx.rank())};
    const vm::Value result = interp.invoke(p, 0, args);
    EXPECT_EQ(result.i32, ctx.rank() == 0 ? 777 : 777);
  });
}

}  // namespace
}  // namespace motor::mp
