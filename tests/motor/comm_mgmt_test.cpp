// System.MP communicator management (Dup/Split) and probe operations.
#include <gtest/gtest.h>

#include "motor/motor_runtime.hpp"

namespace motor::mp {
namespace {

MotorWorldConfig test_config(int ranks = 2) {
  MotorWorldConfig c;
  c.ranks = ranks;
  c.vm.profile = vm::RuntimeProfile::uncosted();
  return c;
}

vm::Obj make_ints(MotorContext& ctx, int n, int base) {
  const vm::MethodTable* mt =
      ctx.vm().types().primitive_array(vm::ElementKind::kInt32);
  vm::Obj arr = ctx.vm().heap().alloc_array(mt, n);
  for (int i = 0; i < n; ++i) {
    vm::set_element<std::int32_t>(arr, i, base + i);
  }
  return arr;
}

TEST(CommMgmtTest, DupIsolatesTagSpaces) {
  run_motor_world(test_config(), [](MotorContext& ctx) {
    Communicator dup = ctx.mp().Dup();
    EXPECT_EQ(dup.Rank(), ctx.rank());
    EXPECT_EQ(dup.Size(), 2);

    vm::GcRoot arr(ctx.thread(), make_ints(ctx, 4, ctx.rank()));
    if (ctx.rank() == 0) {
      // Same (dest, tag) on both communicators: contexts must keep the
      // messages apart.
      vm::GcRoot on_dup(ctx.thread(), make_ints(ctx, 4, 100));
      ASSERT_TRUE(dup.Send(on_dup.get(), 1, 0).is_ok());
      vm::GcRoot on_world(ctx.thread(), make_ints(ctx, 4, 200));
      ASSERT_TRUE(ctx.mp().Send(on_world.get(), 1, 0).is_ok());
    } else {
      ASSERT_TRUE(ctx.mp().Recv(arr.get(), 0, 0).is_ok());
      EXPECT_EQ((vm::get_element<std::int32_t>(arr.get(), 0)), 200);
      ASSERT_TRUE(dup.Recv(arr.get(), 0, 0).is_ok());
      EXPECT_EQ((vm::get_element<std::int32_t>(arr.get(), 0)), 100);
    }
  });
}

TEST(CommMgmtTest, SplitFormsWorkingSubCommunicators) {
  run_motor_world(test_config(4), [](MotorContext& ctx) {
    Communicator half = ctx.mp().Split(ctx.rank() / 2, ctx.rank());
    ASSERT_FALSE(half.IsNull());
    EXPECT_EQ(half.Size(), 2);
    EXPECT_EQ(half.Rank(), ctx.rank() % 2);

    // Exchange within each half only.
    vm::GcRoot arr(ctx.thread(), make_ints(ctx, 2, ctx.rank() * 10));
    const int peer = 1 - half.Rank();
    if (half.Rank() == 0) {
      ASSERT_TRUE(half.Send(arr.get(), peer, 0).is_ok());
    } else {
      ASSERT_TRUE(half.Recv(arr.get(), peer, 0).is_ok());
      // Received from the even rank of my pair.
      EXPECT_EQ((vm::get_element<std::int32_t>(arr.get(), 0)),
                (ctx.rank() - 1) * 10);
    }
    ctx.mp().Barrier();
  });
}

TEST(CommMgmtTest, SplitNegativeColorYieldsNull) {
  run_motor_world(test_config(2), [](MotorContext& ctx) {
    Communicator sub = ctx.mp().Split(ctx.rank() == 0 ? 0 : -1, 0);
    if (ctx.rank() == 0) {
      ASSERT_FALSE(sub.IsNull());
      EXPECT_EQ(sub.Size(), 1);
    } else {
      EXPECT_TRUE(sub.IsNull());
    }
  });
}

TEST(CommMgmtTest, ProbeSeesEnvelopeThenRecv) {
  run_motor_world(test_config(), [](MotorContext& ctx) {
    if (ctx.rank() == 0) {
      vm::GcRoot arr(ctx.thread(), make_ints(ctx, 12, 5));
      ASSERT_TRUE(ctx.mp().Send(arr.get(), 1, 9).is_ok());
    } else {
      MpStatus st;
      ASSERT_TRUE(ctx.mp().Probe(0, 9, &st).is_ok());
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 9);
      EXPECT_EQ(st.count_bytes, 48);
      // Allocate exactly the announced size, then receive.
      const vm::MethodTable* ints =
          ctx.vm().types().primitive_array(vm::ElementKind::kInt32);
      vm::GcRoot arr(ctx.thread(),
                     ctx.vm().heap().alloc_array(ints, st.count_bytes / 4));
      ASSERT_TRUE(ctx.mp().Recv(arr.get(), 0, 9).is_ok());
      EXPECT_EQ((vm::get_element<std::int32_t>(arr.get(), 11)), 16);
    }
  });
}

TEST(CommMgmtTest, IProbeNonBlocking) {
  run_motor_world(test_config(), [](MotorContext& ctx) {
    EXPECT_FALSE(ctx.mp().IProbe(1 - ctx.rank(), 77));
    ctx.mp().Barrier();
  });
}

TEST(CommMgmtTest, OoOpsWorkOnDupAndSplit) {
  run_motor_world(test_config(4), [](MotorContext& ctx) {
    const vm::MethodTable* ints =
        ctx.vm().types().primitive_array(vm::ElementKind::kInt32);
    Communicator half = ctx.mp().Split(ctx.rank() / 2, ctx.rank());
    vm::GcRoot arr(ctx.thread(), nullptr);
    if (half.Rank() == 0) {
      arr.set(make_ints(ctx, 6, ctx.rank()));
    }
    vm::Obj mine = nullptr;
    ASSERT_TRUE(half.OScatter(arr.get(), 0, &mine).is_ok());
    ASSERT_EQ(vm::array_length(mine), 3);
    (void)ints;
    ctx.mp().Barrier();
  });
}

}  // namespace
}  // namespace motor::mp
