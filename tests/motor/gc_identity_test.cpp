// GC-mode transparency of the Motor serializer: the same seeded object
// graph serializes to byte-identical output whether the heap collects
// stop-the-world or incrementally, including mid-cycle (between mark
// slices), and deserialization during an active cycle produces a sound
// copy because its fill paths go through the barriered stores.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/prng.hpp"
#include "motor/motor_serializer.hpp"
#include "vm/handles.hpp"
#include "vm/vm.hpp"

namespace motor::mp {
namespace {

vm::VmConfig gc_mode_config(bool incremental) {
  vm::VmConfig c;
  c.profile = vm::RuntimeProfile::uncosted();
  c.heap.young_bytes = 1 << 20;
  c.heap.incremental = incremental;
  c.heap.region_bytes = 256 * 1024;
  c.heap.mark_slice_objects = 1;  // small graphs still take several slices
  return c;
}

/// A VM with the Figure 5 LinkedArray type and a seeded chain builder,
/// instantiated once per GC mode.
struct SerWorld {
  explicit SerWorld(bool incremental)
      : vm(gc_mode_config(incremental)), thread(vm) {
    ints = vm.types().primitive_array(vm::ElementKind::kInt32);
    linked = vm.types()
                 .define_class("LinkedArray")
                 .transportable()
                 .ref_field("array", ints, /*transportable=*/true)
                 .ref_field("next", vm.types().object_type(),
                            /*transportable=*/true)
                 .ref_field("next2", vm.types().object_type(),
                            /*transportable=*/false)
                 .field("id", vm::ElementKind::kInt32)
                 .build();
  }

  std::uint32_t off(const char* name) const {
    return linked->field_named(name)->offset();
  }

  vm::Obj make_node(std::int32_t id, vm::Obj next) {
    vm::GcRoot next_root(thread, next);
    vm::GcRoot arr(thread, vm.heap().alloc_array(ints, 3));
    vm::set_element<std::int32_t>(arr.get(), 0, id * 10);
    vm::set_element<std::int32_t>(arr.get(), 1, id * 10 + 1);
    vm::set_element<std::int32_t>(arr.get(), 2, -id);
    vm::Obj node = vm.heap().alloc_object(linked);
    vm.heap().store_ref_field(node, off("array"), arr.get());
    vm.heap().store_ref_field(node, off("next"), next_root.get());
    vm::set_field<std::int32_t>(node, off("id"), id);
    return node;
  }

  /// Seeded chain: values depend only on the seed, never on addresses.
  vm::Obj build_chain(std::uint64_t seed, int length) {
    Prng prng(seed);
    vm::GcRoot head(thread, nullptr);
    for (int i = 0; i < length; ++i) {
      head.set(make_node(static_cast<std::int32_t>(prng.next_in(0, 9999)),
                         head.get()));
    }
    return head.get();
  }

  vm::Vm vm;
  vm::ManagedThread thread;
  const vm::MethodTable* ints;
  const vm::MethodTable* linked;
};

bool same_bytes(const ByteBuffer& a, const ByteBuffer& b) {
  return a.size() == b.size() &&
         (a.size() == 0 || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

void drive_to_idle(vm::ManagedHeap& heap) {
  for (int i = 0; i < 10000 && heap.gc_phase() != vm::GcPhase::kIdle; ++i) {
    heap.incremental_step();
  }
  ASSERT_EQ(heap.gc_phase(), vm::GcPhase::kIdle);
}

class GcIdentityTest : public ::testing::TestWithParam<VisitedMode> {};

TEST_P(GcIdentityTest, BytesIdenticalAcrossGcModes) {
  for (std::uint64_t seed : {7u, 0xCAFEu}) {
    SerWorld inc(/*incremental=*/true);
    SerWorld stw(/*incremental=*/false);
    vm::GcRoot inc_head(inc.thread, inc.build_chain(seed, 16));
    vm::GcRoot stw_head(stw.thread, stw.build_chain(seed, 16));
    // Collect both (different relocation machinery) before serializing:
    // output must not depend on where objects landed.
    inc.vm.heap().collect();
    stw.vm.heap().collect();

    MotorSerializer inc_ser(inc.vm, GetParam());
    MotorSerializer stw_ser(stw.vm, GetParam());
    ByteBuffer inc_buf, stw_buf;
    ASSERT_TRUE(inc_ser.serialize(inc_head.get(), inc_buf).is_ok());
    ASSERT_TRUE(stw_ser.serialize(stw_head.get(), stw_buf).is_ok());
    EXPECT_TRUE(same_bytes(inc_buf, stw_buf)) << "seed " << seed;
  }
}

TEST_P(GcIdentityTest, BytesStableBetweenMarkSlices) {
  SerWorld w(/*incremental=*/true);
  vm::GcRoot head(w.thread, w.build_chain(123, 16));
  MotorSerializer ser(w.vm, GetParam());

  ByteBuffer before;
  ASSERT_TRUE(ser.serialize(head.get(), before).is_ok());

  // Start a cycle and stop partway through marking.
  w.vm.heap().incremental_step();
  ASSERT_EQ(w.vm.heap().gc_phase(), vm::GcPhase::kMarking);
  w.vm.heap().incremental_step();
  ByteBuffer mid;
  ASSERT_TRUE(ser.serialize(head.get(), mid).is_ok());
  EXPECT_TRUE(same_bytes(before, mid));

  drive_to_idle(w.vm.heap());
  ByteBuffer after;
  ASSERT_TRUE(ser.serialize(head.get(), after).is_ok());
  EXPECT_TRUE(same_bytes(before, after));
  w.vm.heap().verify_heap();
}

TEST_P(GcIdentityTest, DeserializeDuringCycleSurvivesSlices) {
  SerWorld w(/*incremental=*/true);
  vm::GcRoot head(w.thread, w.build_chain(99, 12));
  MotorSerializer ser(w.vm, GetParam());
  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(head.get(), buf).is_ok());

  // Deserialize while marking is in progress: every reference the fill
  // paths store must be shaded, or the copy would lose nodes when the
  // cycle finishes.
  w.vm.heap().incremental_step();
  ASSERT_EQ(w.vm.heap().gc_phase(), vm::GcPhase::kMarking);
  buf.seek(0);
  vm::GcRoot copy(w.thread, nullptr);
  {
    vm::Obj out = nullptr;
    ASSERT_TRUE(ser.deserialize(buf, w.thread, &out).is_ok());
    copy.set(out);
  }
  drive_to_idle(w.vm.heap());
  w.vm.heap().collect(/*force_elder_sweep=*/true);
  w.vm.heap().verify_heap();

  // The copy survived intact: same ids and payloads as the original.
  vm::Obj a = head.get();
  vm::Obj b = copy.get();
  int nodes = 0;
  while (a != nullptr) {
    ASSERT_NE(b, nullptr);
    EXPECT_EQ((vm::get_field<std::int32_t>(a, w.off("id"))),
              (vm::get_field<std::int32_t>(b, w.off("id"))));
    vm::Obj arr_a = vm::get_ref_field(a, w.off("array"));
    vm::Obj arr_b = vm::get_ref_field(b, w.off("array"));
    ASSERT_NE(arr_b, nullptr);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ((vm::get_element<std::int32_t>(arr_a, i)),
                (vm::get_element<std::int32_t>(arr_b, i)));
    }
    a = vm::get_ref_field(a, w.off("next"));
    b = vm::get_ref_field(b, w.off("next"));
    ++nodes;
  }
  EXPECT_EQ(b, nullptr);
  EXPECT_EQ(nodes, 12);
}

INSTANTIATE_TEST_SUITE_P(AllModes, GcIdentityTest,
                         ::testing::Values(VisitedMode::kLinear,
                                           VisitedMode::kHashed));

}  // namespace
}  // namespace motor::mp
