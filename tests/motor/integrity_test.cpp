// Object-model integrity rules of the regular Motor bindings (§2.4/§4.2.1).
#include "motor/integrity.hpp"

#include <gtest/gtest.h>

#include "vm/handles.hpp"
#include "vm/vm.hpp"

namespace motor::mp {
namespace {

class IntegrityTest : public ::testing::Test {
 protected:
  IntegrityTest() : vm_(config()), thread_(vm_) {}
  static vm::VmConfig config() {
    vm::VmConfig c;
    c.profile = vm::RuntimeProfile::uncosted();
    return c;
  }
  vm::Vm vm_;
  vm::ManagedThread thread_;
};

TEST_F(IntegrityTest, PlainValueClassAllowed) {
  const vm::MethodTable* mt = vm_.types()
                                  .define_class("Particle")
                                  .field("x", vm::ElementKind::kDouble)
                                  .field("y", vm::ElementKind::kDouble)
                                  .field("charge", vm::ElementKind::kInt32)
                                  .build();
  EXPECT_TRUE(check_transport_type(mt).is_ok());

  vm::Obj obj = vm_.heap().alloc_object(mt);
  TransportView view;
  ASSERT_TRUE(transport_view(obj, &view).is_ok());
  EXPECT_EQ(view.bytes, mt->instance_bytes());
  EXPECT_EQ(view.data, vm::obj_data(obj));
}

TEST_F(IntegrityTest, ClassWithReferencesRejected) {
  const vm::MethodTable* mt =
      vm_.types()
          .define_class("Holder")
          .ref_field("payload", vm_.types().object_type())
          .build();
  EXPECT_EQ(check_transport_type(mt).code(), ErrorCode::kIntegrity);

  vm::Obj obj = vm_.heap().alloc_object(mt);
  TransportView view;
  EXPECT_EQ(transport_view(obj, &view).code(), ErrorCode::kIntegrity);
}

TEST_F(IntegrityTest, PrimitiveArraysAllowed) {
  const vm::MethodTable* mt =
      vm_.types().primitive_array(vm::ElementKind::kDouble);
  vm::Obj arr = vm_.heap().alloc_array(mt, 8);
  TransportView view;
  ASSERT_TRUE(transport_view(arr, &view).is_ok());
  EXPECT_EQ(view.bytes, 64u);
  EXPECT_EQ(view.data, vm::array_data(arr));
}

TEST_F(IntegrityTest, MultidimensionalArrayAllowed) {
  // The CLI true-MD-array selling point (§3): one contiguous object.
  const vm::MethodTable* mt =
      vm_.types().primitive_array(vm::ElementKind::kFloat, 3);
  vm::Obj arr = vm_.heap().alloc_md_array(mt, {2, 3, 4});
  TransportView view;
  ASSERT_TRUE(transport_view(arr, &view).is_ok());
  EXPECT_EQ(view.bytes, 2u * 3u * 4u * sizeof(float));
}

TEST_F(IntegrityTest, ReferenceArrayRejected) {
  const vm::MethodTable* arr_mt =
      vm_.types().ref_array(vm_.types().object_type());
  vm::Obj arr = vm_.heap().alloc_array(arr_mt, 4);
  TransportView view;
  EXPECT_EQ(transport_view(arr, &view).code(), ErrorCode::kIntegrity);
}

TEST_F(IntegrityTest, NullObjectRejected) {
  TransportView view;
  EXPECT_EQ(transport_view(nullptr, &view).code(), ErrorCode::kBufferError);
}

TEST_F(IntegrityTest, ArrayWindowInBounds) {
  const vm::MethodTable* mt =
      vm_.types().primitive_array(vm::ElementKind::kInt32);
  vm::Obj arr = vm_.heap().alloc_array(mt, 10);
  TransportView view;
  ASSERT_TRUE(transport_view_array(arr, 2, 5, &view).is_ok());
  EXPECT_EQ(view.bytes, 20u);
  EXPECT_EQ(view.data, vm::array_data(arr) + 8);
}

TEST_F(IntegrityTest, ArrayWindowOverrunRejected) {
  // "Overwrite the end of an object, corrupting the object header ... of
  // the next object" — exactly what the bounds check prevents.
  const vm::MethodTable* mt =
      vm_.types().primitive_array(vm::ElementKind::kInt32);
  vm::Obj arr = vm_.heap().alloc_array(mt, 10);
  TransportView view;
  EXPECT_EQ(transport_view_array(arr, 6, 5, &view).code(),
            ErrorCode::kCountError);
  EXPECT_EQ(transport_view_array(arr, -1, 5, &view).code(),
            ErrorCode::kCountError);
  EXPECT_EQ(transport_view_array(arr, 0, 11, &view).code(),
            ErrorCode::kCountError);
}

TEST_F(IntegrityTest, OffsetIntoNonArrayRejected) {
  // "Transporting portions of objects or offsetting into an object is not
  // supported" (§4.2.1).
  const vm::MethodTable* mt = vm_.types()
                                  .define_class("Blob")
                                  .field("a", vm::ElementKind::kInt64)
                                  .field("b", vm::ElementKind::kInt64)
                                  .build();
  vm::Obj obj = vm_.heap().alloc_object(mt);
  TransportView view;
  EXPECT_EQ(transport_view_array(obj, 0, 1, &view).code(),
            ErrorCode::kIntegrity);
}

}  // namespace
}  // namespace motor::mp
