// The Motor custom serializer (§7.5): Transportable traversal, type
// table + side-by-side records, split representation, visited-structure
// modes.
#include "motor/motor_serializer.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "vm/handles.hpp"
#include "vm/vm.hpp"

namespace motor::mp {
namespace {

class MotorSerializerTest : public ::testing::TestWithParam<VisitedMode> {
 protected:
  MotorSerializerTest() : vm_(config()), thread_(vm_) {
    ints_ = vm_.types().primitive_array(vm::ElementKind::kInt32);
    // The paper's Figure 5 type: array and next propagate, next2 does not.
    linked_ = vm_.types()
                  .define_class("LinkedArray")
                  .transportable()
                  .ref_field("array", ints_, /*transportable=*/true)
                  .ref_field("next", vm_.types().object_type(),
                             /*transportable=*/true)
                  .ref_field("next2", vm_.types().object_type(),
                             /*transportable=*/false)
                  .field("id", vm::ElementKind::kInt32)
                  .build();
  }

  static vm::VmConfig config() {
    vm::VmConfig c;
    c.profile = vm::RuntimeProfile::uncosted();
    c.heap.young_bytes = 1 << 20;
    return c;
  }

  MotorSerializer make_serializer() {
    return MotorSerializer(vm_, GetParam());
  }

  vm::Obj make_node(int id, vm::Obj next, vm::Obj next2) {
    vm::GcRoot next_root(thread_, next);
    vm::GcRoot next2_root(thread_, next2);
    vm::GcRoot arr(thread_, vm_.heap().alloc_array(ints_, 2));
    vm::set_element<std::int32_t>(arr.get(), 0, id * 10);
    vm::set_element<std::int32_t>(arr.get(), 1, id * 10 + 1);
    vm::Obj node = vm_.heap().alloc_object(linked_);
    vm::set_ref_field(node, off("array"), arr.get());
    vm::set_ref_field(node, off("next"), next_root.get());
    vm::set_ref_field(node, off("next2"), next2_root.get());
    vm::set_field<std::int32_t>(node, off("id"), id);
    return node;
  }

  std::uint32_t off(const char* name) {
    return linked_->field_named(name)->offset();
  }

  vm::Vm vm_;
  vm::ManagedThread thread_;
  const vm::MethodTable* ints_;
  const vm::MethodTable* linked_;
};

TEST_P(MotorSerializerTest, SingleObjectRoundTrip) {
  MotorSerializer ser = make_serializer();
  vm::GcRoot node(thread_, make_node(3, nullptr, nullptr));
  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(node.get(), buf).is_ok());
  buf.seek(0);
  vm::Obj copy = nullptr;
  ASSERT_TRUE(ser.deserialize(buf, thread_, &copy).is_ok());
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ((vm::get_field<std::int32_t>(copy, off("id"))), 3);
  vm::Obj arr = vm::get_ref_field(copy, off("array"));
  ASSERT_NE(arr, nullptr);  // Transportable field propagated
  EXPECT_EQ((vm::get_element<std::int32_t>(arr, 0)), 30);
}

TEST_P(MotorSerializerTest, NonTransportableReferencesSwappedToNull) {
  // Figure 5 semantics: next2 must arrive null even when set.
  MotorSerializer ser = make_serializer();
  vm::GcRoot other(thread_, make_node(99, nullptr, nullptr));
  vm::GcRoot node(thread_, make_node(1, nullptr, other.get()));
  ASSERT_NE(vm::get_ref_field(node.get(), off("next2")), nullptr);

  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(node.get(), buf).is_ok());
  buf.seek(0);
  vm::Obj copy = nullptr;
  ASSERT_TRUE(ser.deserialize(buf, thread_, &copy).is_ok());
  EXPECT_EQ(vm::get_ref_field(copy, off("next2")), nullptr);
  EXPECT_GT(ser.stats().null_swapped_refs, 0u);
}

TEST_P(MotorSerializerTest, TreeOfObjectsFollowsTransportableChain) {
  MotorSerializer ser = make_serializer();
  vm::GcRoot tail(thread_, make_node(2, nullptr, nullptr));
  vm::GcRoot mid(thread_, make_node(1, tail.get(), nullptr));
  vm::GcRoot head(thread_, make_node(0, mid.get(), nullptr));

  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(head.get(), buf).is_ok());
  buf.seek(0);
  vm::Obj copy = nullptr;
  ASSERT_TRUE(ser.deserialize(buf, thread_, &copy).is_ok());
  for (int id = 0; id <= 2; ++id) {
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ((vm::get_field<std::int32_t>(copy, off("id"))), id);
    copy = vm::get_ref_field(copy, off("next"));
  }
  EXPECT_EQ(copy, nullptr);
}

TEST_P(MotorSerializerTest, SharedAndCyclicReferencesPreserved) {
  MotorSerializer ser = make_serializer();
  vm::GcRoot a(thread_, make_node(1, nullptr, nullptr));
  vm::GcRoot b(thread_, make_node(2, a.get(), nullptr));
  vm::set_ref_field(a.get(), off("next"), b.get());  // cycle a <-> b

  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(a.get(), buf).is_ok());
  buf.seek(0);
  vm::Obj copy_a = nullptr;
  ASSERT_TRUE(ser.deserialize(buf, thread_, &copy_a).is_ok());
  vm::Obj copy_b = vm::get_ref_field(copy_a, off("next"));
  ASSERT_NE(copy_b, nullptr);
  EXPECT_EQ(vm::get_ref_field(copy_b, off("next")), copy_a);
}

TEST_P(MotorSerializerTest, PrimitiveArrayRoundTrip) {
  MotorSerializer ser = make_serializer();
  vm::GcRoot arr(thread_, vm_.heap().alloc_array(ints_, 100));
  for (int i = 0; i < 100; ++i) {
    vm::set_element<std::int32_t>(arr.get(), i, i * 7);
  }
  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(arr.get(), buf).is_ok());
  buf.seek(0);
  vm::Obj copy = nullptr;
  ASSERT_TRUE(ser.deserialize(buf, thread_, &copy).is_ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ((vm::get_element<std::int32_t>(copy, i)), i * 7);
  }
}

TEST_P(MotorSerializerTest, ObjectArrayPropagatesEntriesByDefault) {
  MotorSerializer ser = make_serializer();
  const vm::MethodTable* arr_mt = vm_.types().ref_array(linked_);
  vm::GcRoot arr(thread_, vm_.heap().alloc_array(arr_mt, 3));
  for (int i = 0; i < 3; ++i) {
    vm::Obj node = make_node(i, nullptr, nullptr);
    vm::set_ref_element(arr.get(), i, node);
  }
  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(arr.get(), buf).is_ok());
  buf.seek(0);
  vm::Obj copy = nullptr;
  ASSERT_TRUE(ser.deserialize(buf, thread_, &copy).is_ok());
  ASSERT_EQ(vm::array_length(copy), 3);
  for (int i = 0; i < 3; ++i) {
    vm::Obj node = vm::get_ref_element(copy, i);
    ASSERT_NE(node, nullptr);
    EXPECT_EQ((vm::get_field<std::int32_t>(node, off("id"))), i);
  }
}

TEST_P(MotorSerializerTest, ArrayWindowSerializesSubRange) {
  MotorSerializer ser = make_serializer();
  vm::GcRoot arr(thread_, vm_.heap().alloc_array(ints_, 10));
  for (int i = 0; i < 10; ++i) {
    vm::set_element<std::int32_t>(arr.get(), i, i);
  }
  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize_array_window(arr.get(), 4, 3, buf).is_ok());
  buf.seek(0);
  vm::Obj piece = nullptr;
  ASSERT_TRUE(ser.deserialize(buf, thread_, &piece).is_ok());
  ASSERT_EQ(vm::array_length(piece), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((vm::get_element<std::int32_t>(piece, i)), 4 + i);
  }
}

TEST_P(MotorSerializerTest, SplitRepresentationPiecesAreIndependent) {
  // The §7.5 property: each piece has its own type table and is
  // individually deserializable.
  MotorSerializer ser = make_serializer();
  const vm::MethodTable* arr_mt = vm_.types().ref_array(linked_);
  vm::GcRoot arr(thread_, vm_.heap().alloc_array(arr_mt, 6));
  for (int i = 0; i < 6; ++i) {
    vm::set_ref_element(arr.get(), i, make_node(i, nullptr, nullptr));
  }
  std::vector<ByteBuffer> pieces;
  ASSERT_TRUE(ser.serialize_split(arr.get(), {2, 2, 2}, pieces).is_ok());
  ASSERT_EQ(pieces.size(), 3u);

  // Deserialize piece 1 alone (out of order, no shared state).
  pieces[1].seek(0);
  vm::Obj piece = nullptr;
  ASSERT_TRUE(ser.deserialize(pieces[1], thread_, &piece).is_ok());
  ASSERT_EQ(vm::array_length(piece), 2);
  EXPECT_EQ((vm::get_field<std::int32_t>(vm::get_ref_element(piece, 0),
                                         off("id"))),
            2);
}

TEST_P(MotorSerializerTest, SplitThenMergeIsIdentity) {
  MotorSerializer ser = make_serializer();
  vm::GcRoot arr(thread_, vm_.heap().alloc_array(ints_, 12));
  for (int i = 0; i < 12; ++i) {
    vm::set_element<std::int32_t>(arr.get(), i, i * i);
  }
  std::vector<ByteBuffer> pieces;
  ASSERT_TRUE(ser.serialize_split(arr.get(), {5, 3, 4}, pieces).is_ok());
  for (auto& p : pieces) p.seek(0);
  vm::Obj merged = nullptr;
  ASSERT_TRUE(ser.deserialize_merge(pieces, thread_, &merged).is_ok());
  ASSERT_EQ(vm::array_length(merged), 12);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ((vm::get_element<std::int32_t>(merged, i)), i * i);
  }
}

TEST_P(MotorSerializerTest, SplitCountsMustCoverArray) {
  MotorSerializer ser = make_serializer();
  vm::GcRoot arr(thread_, vm_.heap().alloc_array(ints_, 10));
  std::vector<ByteBuffer> pieces;
  EXPECT_EQ(ser.serialize_split(arr.get(), {5, 4}, pieces).code(),
            ErrorCode::kCountError);
  EXPECT_EQ(ser.serialize_split(arr.get(), {5, -1, 6}, pieces).code(),
            ErrorCode::kCountError);
}

TEST_P(MotorSerializerTest, DeepListNeedsNoRecursionBudget) {
  // Iterative traversal: 5000 nodes serialize fine — unlike the Java
  // baseline, which overflows past ~1200 frames.
  MotorSerializer ser = make_serializer();
  vm::GcRoot head(thread_, nullptr);
  for (int i = 4999; i >= 0; --i) {
    head.set(make_node(i, head.get(), nullptr));
  }
  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(head.get(), buf).is_ok());
  buf.seek(0);
  vm::Obj copy = nullptr;
  ASSERT_TRUE(ser.deserialize(buf, thread_, &copy).is_ok());
  EXPECT_EQ((vm::get_field<std::int32_t>(copy, off("id"))), 0);
}

TEST_P(MotorSerializerTest, MultidimensionalArrayRoundTrip) {
  MotorSerializer ser = make_serializer();
  const vm::MethodTable* md_mt =
      vm_.types().primitive_array(vm::ElementKind::kDouble, 2);
  vm::GcRoot arr(thread_, vm_.heap().alloc_md_array(md_mt, {3, 5}));
  for (int i = 0; i < 15; ++i) {
    vm::set_element<double>(arr.get(), i, i * 0.5);
  }
  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(arr.get(), buf).is_ok());
  buf.seek(0);
  vm::Obj copy = nullptr;
  ASSERT_TRUE(ser.deserialize(buf, thread_, &copy).is_ok());
  EXPECT_EQ(vm::obj_mt(copy)->rank(), 2);
  EXPECT_EQ(vm::array_dim(copy, 0), 3);
  EXPECT_EQ(vm::array_dim(copy, 1), 5);
  EXPECT_DOUBLE_EQ(vm::get_element<double>(copy, 14), 7.0);
}

INSTANTIATE_TEST_SUITE_P(VisitedModes, MotorSerializerTest,
                         ::testing::Values(VisitedMode::kLinear,
                                           VisitedMode::kHashed),
                         [](const auto& info) {
                           return info.param == VisitedMode::kLinear
                                      ? "linear"
                                      : "hashed";
                         });

TEST(MotorSerializerCostTest, LinearVisitedDoesQuadraticScanWork) {
  // The Figure 10 fall-off mechanism: linear-mode scan steps grow
  // superlinearly in object count; hashed mode does none.
  vm::VmConfig cfg;
  cfg.profile = vm::RuntimeProfile::uncosted();
  vm::Vm vm(cfg);
  vm::ManagedThread thread(vm);
  const vm::MethodTable* ints =
      vm.types().primitive_array(vm::ElementKind::kInt32);
  const vm::MethodTable* node =
      vm.types()
          .define_class("N")
          .ref_field("next", vm.types().object_type(), true)
          .build();
  auto make_list = [&](int n) {
    vm::GcRoot head(thread, nullptr);
    for (int i = 0; i < n; ++i) {
      vm::Obj x = vm.heap().alloc_object(node);
      vm::set_ref_field(x, 0, head.get());
      head.set(x);
    }
    return head.get();
  };
  (void)ints;

  MotorSerializer linear(vm, VisitedMode::kLinear);
  MotorSerializer hashed(vm, VisitedMode::kHashed);
  vm::GcRoot list(thread, make_list(512));
  ByteBuffer b1, b2;
  ASSERT_TRUE(linear.serialize(list.get(), b1).is_ok());
  ASSERT_TRUE(hashed.serialize(list.get(), b2).is_ok());
  EXPECT_EQ(b1.size(), b2.size());  // identical wire format
  // 512 inserts against a linear table: ~n^2/2 comparisons.
  EXPECT_GT(linear.stats().visited_scan_steps, 100'000u);
  EXPECT_EQ(hashed.stats().visited_scan_steps, 0u);
}

TEST_P(MotorSerializerTest, GatherSpansConcatenateToFlatBytes) {
  // The gathered representation must be byte-identical to the flat one —
  // that is what lets the receiver deserialize it with the regular path.
  MotorSerializer ser = make_serializer();
  vm::GcRoot big(thread_, vm_.heap().alloc_array(ints_, 1024));
  for (int i = 0; i < 1024; ++i) {
    vm::set_element<std::int32_t>(big.get(), i, i * 3);
  }
  vm::GcRoot node(thread_, make_node(7, nullptr, nullptr));
  vm::set_ref_field(node.get(), off("array"), big.get());

  ByteBuffer flat;
  ASSERT_TRUE(ser.serialize(node.get(), flat).is_ok());
  GatherRep rep;
  ASSERT_TRUE(ser.serialize_gather(node.get(), rep).is_ok());

  ASSERT_EQ(rep.total_bytes(), flat.size());
  std::vector<std::byte> joined(rep.total_bytes());
  rep.spans.copy_to(joined);
  EXPECT_EQ(0, std::memcmp(joined.data(), flat.data(), flat.size()));

  // The 4 KiB int payload rides as an in-place reference, not a copy:
  // more than one span, the big array listed as backing, and its bytes
  // aliased directly.
  EXPECT_GT(rep.spans.part_count(), 1u);
  ASSERT_EQ(rep.backing.size(), 1u);
  EXPECT_EQ(rep.backing[0], big.get());
  bool aliased = false;
  for (ByteSpan part : rep.spans.parts()) {
    if (part.data() == vm::array_data(big.get())) aliased = true;
  }
  EXPECT_TRUE(aliased);
}

TEST_P(MotorSerializerTest, GatherRoundTripsThroughRegularDeserialize) {
  MotorSerializer ser = make_serializer();
  vm::GcRoot big(thread_, vm_.heap().alloc_array(ints_, 300));
  for (int i = 0; i < 300; ++i) {
    vm::set_element<std::int32_t>(big.get(), i, 1000 - i);
  }
  vm::GcRoot node(thread_, make_node(9, nullptr, nullptr));
  vm::set_ref_field(node.get(), off("array"), big.get());

  GatherRep rep;
  ASSERT_TRUE(ser.serialize_gather(node.get(), rep).is_ok());
  ByteBuffer wire;
  wire.resize(rep.total_bytes());
  rep.spans.copy_to({wire.data(), wire.size()});
  wire.seek(0);

  vm::Obj copy = nullptr;
  ASSERT_TRUE(ser.deserialize(wire, thread_, &copy).is_ok());
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ((vm::get_field<std::int32_t>(copy, off("id"))), 9);
  vm::Obj arr = vm::get_ref_field(copy, off("array"));
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(vm::array_length(arr), 300);
  EXPECT_EQ((vm::get_element<std::int32_t>(arr, 299)), 701);
}

TEST_P(MotorSerializerTest, GatherInlinesSmallPayloads) {
  // Tiny arrays are not worth a gather part: they stay in the metadata
  // buffer and the rep needs no pinning at all.
  MotorSerializer ser = make_serializer();
  vm::GcRoot node(thread_, make_node(1, nullptr, nullptr));  // 2-int array
  GatherRep rep;
  ASSERT_TRUE(ser.serialize_gather(node.get(), rep).is_ok());
  EXPECT_TRUE(rep.backing.empty());
  EXPECT_EQ(rep.spans.part_count(), 1u);  // one contiguous meta segment
}

TEST_P(MotorSerializerTest, SplitGatherPiecesMatchFlatSplit) {
  MotorSerializer ser = make_serializer();
  vm::GcRoot arr(thread_, vm_.heap().alloc_array(ints_, 512));
  for (int i = 0; i < 512; ++i) {
    vm::set_element<std::int32_t>(arr.get(), i, i);
  }
  const std::vector<std::int64_t> counts{128, 256, 128};
  std::vector<ByteBuffer> flat;
  ASSERT_TRUE(ser.serialize_split(arr.get(), counts, flat).is_ok());
  std::vector<GatherRep> gathered;
  ASSERT_TRUE(ser.serialize_split_gather(arr.get(), counts, gathered).is_ok());

  ASSERT_EQ(gathered.size(), flat.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    ASSERT_EQ(gathered[i].total_bytes(), flat[i].size()) << "piece " << i;
    std::vector<std::byte> joined(gathered[i].total_bytes());
    gathered[i].spans.copy_to(joined);
    EXPECT_EQ(0, std::memcmp(joined.data(), flat[i].data(), flat[i].size()))
        << "piece " << i;
  }
}

TEST(MotorSerializerDefaultTest, DefaultsToHashedAndStaysNearLinear) {
  // Satellite regression: the out-of-the-box serializer must not carry
  // the paper's O(n^2) visited scan — a large object graph serializes
  // with ZERO linear scan steps under the default configuration.
  vm::VmConfig cfg;
  cfg.profile = vm::RuntimeProfile::uncosted();
  cfg.heap.young_bytes = 8 << 20;
  vm::Vm vm(cfg);
  vm::ManagedThread thread(vm);
  const vm::MethodTable* node =
      vm.types()
          .define_class("NDef")
          .ref_field("next", vm.types().object_type(), true)
          .build();
  vm::GcRoot head(thread, nullptr);
  for (int i = 0; i < 8192; ++i) {
    vm::Obj x = vm.heap().alloc_object(node);
    vm::set_ref_field(x, 0, head.get());
    head.set(x);
  }

  MotorSerializer ser(vm);  // default mode
  EXPECT_EQ(ser.mode(), VisitedMode::kHashed);
  ByteBuffer out;
  ASSERT_TRUE(ser.serialize(head.get(), out).is_ok());
  EXPECT_GE(ser.stats().objects_serialized, 8192u);
  EXPECT_EQ(ser.stats().visited_scan_steps, 0u);
  // Lookups DID happen (one per edge + insert probe); they were just O(1).
  EXPECT_GE(ser.stats().visited_lookups, 8192u);
}

}  // namespace
}  // namespace motor::mp
