// The extended object-oriented operations end-to-end across ranks
// (§4.2.2): OSend/ORecv, OBcast, OScatter/OGather with the split
// representation, and the buffer pool's GC-driven trimming.
#include <gtest/gtest.h>

#include "motor/motor_runtime.hpp"

namespace motor::mp {
namespace {

MotorWorldConfig test_config(int ranks = 2) {
  MotorWorldConfig c;
  c.ranks = ranks;
  c.vm.profile = vm::RuntimeProfile::uncosted();
  c.vm.heap.young_bytes = 512 * 1024;
  return c;
}

struct ListTypes {
  const vm::MethodTable* ints;
  const vm::MethodTable* node;

  explicit ListTypes(vm::Vm& vm) {
    ints = vm.types().primitive_array(vm::ElementKind::kInt32);
    node = vm.types()
               .define_class("LinkedArray")
               .transportable()
               .ref_field("array", ints, true)
               .ref_field("next", vm.types().object_type(), true)
               .field("id", vm::ElementKind::kInt32)
               .build();
  }

  vm::Obj make_node(MotorContext& ctx, int id, vm::Obj next) const {
    vm::GcRoot next_root(ctx.thread(), next);
    vm::GcRoot arr(ctx.thread(), ctx.vm().heap().alloc_array(ints, 4));
    for (int k = 0; k < 4; ++k) {
      vm::set_element<std::int32_t>(arr.get(), k, id * 100 + k);
    }
    vm::Obj n = ctx.vm().heap().alloc_object(node);
    vm::set_ref_field(n, node->field_named("array")->offset(), arr.get());
    vm::set_ref_field(n, node->field_named("next")->offset(),
                      next_root.get());
    vm::set_field<std::int32_t>(n, node->field_named("id")->offset(), id);
    return n;
  }
};

TEST(OoOpsTest, OSendORecvLinkedList) {
  run_motor_world(test_config(), [](MotorContext& ctx) {
    ListTypes types(ctx.vm());
    if (ctx.rank() == 0) {
      vm::GcRoot list(ctx.thread(), nullptr);
      for (int i = 9; i >= 0; --i) {
        list.set(types.make_node(ctx, i, list.get()));
      }
      ASSERT_TRUE(ctx.mp().OSend(list.get(), 1, 7).is_ok());
    } else {
      MpStatus st;
      vm::Obj list = ctx.mp().ORecv(0, 7, &st);
      ASSERT_NE(list, nullptr);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      for (int i = 0; i < 10; ++i) {
        ASSERT_NE(list, nullptr);
        EXPECT_EQ((vm::get_field<std::int32_t>(
                      list, types.node->field_named("id")->offset())),
                  i);
        vm::Obj arr = vm::get_ref_field(
            list, types.node->field_named("array")->offset());
        EXPECT_EQ((vm::get_element<std::int32_t>(arr, 2)), i * 100 + 2);
        list = vm::get_ref_field(list,
                                 types.node->field_named("next")->offset());
      }
    }
  });
}

TEST(OoOpsTest, OSendArrayWindow) {
  run_motor_world(test_config(), [](MotorContext& ctx) {
    ListTypes types(ctx.vm());
    if (ctx.rank() == 0) {
      vm::GcRoot arr(ctx.thread(), ctx.vm().heap().alloc_array(types.ints, 10));
      for (int i = 0; i < 10; ++i) {
        vm::set_element<std::int32_t>(arr.get(), i, i);
      }
      ASSERT_TRUE(ctx.mp().OSend(arr.get(), 3, 4, 1, 0).is_ok());
    } else {
      vm::Obj piece = ctx.mp().ORecv(0, 0);
      ASSERT_NE(piece, nullptr);
      ASSERT_EQ(vm::array_length(piece), 4);
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ((vm::get_element<std::int32_t>(piece, i)), 3 + i);
      }
    }
  });
}

TEST(OoOpsTest, ORecvAnySource) {
  run_motor_world(test_config(3), [](MotorContext& ctx) {
    ListTypes types(ctx.vm());
    if (ctx.rank() != 0) {
      vm::GcRoot node(ctx.thread(),
                      types.make_node(ctx, ctx.rank(), nullptr));
      ASSERT_TRUE(ctx.mp().OSend(node.get(), 0, ctx.rank()).is_ok());
    } else {
      int seen = 0;
      for (int i = 0; i < 2; ++i) {
        MpStatus st;
        vm::Obj node = ctx.mp().ORecv(kAnySource, kAnyTag, &st);
        ASSERT_NE(node, nullptr);
        EXPECT_EQ((vm::get_field<std::int32_t>(
                      node, types.node->field_named("id")->offset())),
                  st.source);
        seen += st.source;
      }
      EXPECT_EQ(seen, 3);  // ranks 1 and 2
    }
  });
}

TEST(OoOpsTest, OBcastReplicatesTree) {
  run_motor_world(test_config(3), [](MotorContext& ctx) {
    ListTypes types(ctx.vm());
    vm::GcRoot root_obj(ctx.thread(), nullptr);
    if (ctx.rank() == 0) {
      root_obj.set(types.make_node(ctx, 5,
                                   types.make_node(ctx, 6, nullptr)));
    }
    vm::Obj inout = root_obj.get();
    ASSERT_TRUE(ctx.mp().OBcast(&inout, 0).is_ok());
    ASSERT_NE(inout, nullptr);
    EXPECT_EQ((vm::get_field<std::int32_t>(
                  inout, types.node->field_named("id")->offset())),
              5);
    vm::Obj next =
        vm::get_ref_field(inout, types.node->field_named("next")->offset());
    ASSERT_NE(next, nullptr);
    EXPECT_EQ((vm::get_field<std::int32_t>(
                  next, types.node->field_named("id")->offset())),
              6);
  });
}

TEST(OoOpsTest, OScatterObjectArray) {
  // The capability the paper stresses other implementations lack: scatter
  // an ARRAY OF OBJECTS across ranks (§1/§2.4).
  run_motor_world(test_config(2), [](MotorContext& ctx) {
    ListTypes types(ctx.vm());
    const vm::MethodTable* arr_mt = ctx.vm().types().ref_array(types.node);
    vm::GcRoot arr(ctx.thread(), nullptr);
    if (ctx.rank() == 0) {
      arr.set(ctx.vm().heap().alloc_array(arr_mt, 6));
      for (int i = 0; i < 6; ++i) {
        vm::Obj n = types.make_node(ctx, i, nullptr);
        vm::set_ref_element(arr.get(), i, n);
      }
    }
    vm::Obj mine = nullptr;
    ASSERT_TRUE(ctx.mp().OScatter(arr.get(), 0, &mine).is_ok());
    ASSERT_NE(mine, nullptr);
    ASSERT_EQ(vm::array_length(mine), 3);
    for (int i = 0; i < 3; ++i) {
      vm::Obj n = vm::get_ref_element(mine, i);
      ASSERT_NE(n, nullptr);
      EXPECT_EQ((vm::get_field<std::int32_t>(
                    n, types.node->field_named("id")->offset())),
                ctx.rank() * 3 + i);
    }
  });
}

TEST(OoOpsTest, OGatherReconstructsSingleArray) {
  run_motor_world(test_config(3), [](MotorContext& ctx) {
    ListTypes types(ctx.vm());
    const vm::MethodTable* arr_mt = ctx.vm().types().ref_array(types.node);
    vm::GcRoot mine(ctx.thread(), ctx.vm().heap().alloc_array(arr_mt, 2));
    for (int i = 0; i < 2; ++i) {
      vm::Obj n = types.make_node(ctx, ctx.rank() * 2 + i, nullptr);
      vm::set_ref_element(mine.get(), i, n);
    }
    vm::Obj merged = nullptr;
    ASSERT_TRUE(ctx.mp().OGather(mine.get(), 0, &merged).is_ok());
    if (ctx.rank() == 0) {
      ASSERT_NE(merged, nullptr);
      ASSERT_EQ(vm::array_length(merged), 6);
      for (int i = 0; i < 6; ++i) {
        vm::Obj n = vm::get_ref_element(merged, i);
        ASSERT_NE(n, nullptr);
        EXPECT_EQ((vm::get_field<std::int32_t>(
                      n, types.node->field_named("id")->offset())),
                  i);
      }
    } else {
      EXPECT_EQ(merged, nullptr);
    }
  });
}

TEST(OoOpsTest, OScatterGatherRoundTripPrimitive) {
  run_motor_world(test_config(2), [](MotorContext& ctx) {
    ListTypes types(ctx.vm());
    vm::GcRoot arr(ctx.thread(), nullptr);
    if (ctx.rank() == 0) {
      arr.set(ctx.vm().heap().alloc_array(types.ints, 8));
      for (int i = 0; i < 8; ++i) {
        vm::set_element<std::int32_t>(arr.get(), i, i + 1);
      }
    }
    vm::Obj mine = nullptr;
    ASSERT_TRUE(ctx.mp().OScatter(arr.get(), 0, &mine).is_ok());
    ASSERT_EQ(vm::array_length(mine), 4);

    vm::GcRoot mine_root(ctx.thread(), mine);
    vm::Obj merged = nullptr;
    ASSERT_TRUE(ctx.mp().OGather(mine_root.get(), 0, &merged).is_ok());
    if (ctx.rank() == 0) {
      ASSERT_EQ(vm::array_length(merged), 8);
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ((vm::get_element<std::int32_t>(merged, i)), i + 1);
      }
    }
  });
}

TEST(OoOpsTest, OScatterUnevenLengthRejected) {
  run_motor_world(test_config(2), [](MotorContext& ctx) {
    ListTypes types(ctx.vm());
    if (ctx.rank() == 0) {
      vm::GcRoot arr(ctx.thread(), ctx.vm().heap().alloc_array(types.ints, 7));
      vm::Obj mine = nullptr;
      EXPECT_EQ(ctx.mp().OScatter(arr.get(), 0, &mine).code(),
                ErrorCode::kCountError);
    }
    // Rank 1 must not join a scatter the root aborted: just finish.
  });
}

TEST(OoOpsTest, LargeArrayStreamsWithoutStagingCopies) {
  // End-to-end zero-copy: a 256 KiB int array OSend/ORecv must move its
  // payload gathered (serializer spans -> wire -> posted pool buffer)
  // with staging reserved for the small control messages only.
  MotorWorldConfig cfg = test_config();
  cfg.vm.heap.young_bytes = 4 << 20;
  run_motor_world(cfg, [](MotorContext& ctx) {
    ListTypes types(ctx.vm());
    constexpr int kInts = 64 * 1024;
    constexpr std::size_t kBytes = kInts * sizeof(std::int32_t);
    if (ctx.rank() == 0) {
      vm::GcRoot arr(ctx.thread(),
                     ctx.vm().heap().alloc_array(types.ints, kInts));
      for (int i = 0; i < kInts; ++i) {
        vm::set_element<std::int32_t>(arr.get(), i, i ^ 0x5aa5);
      }
      ASSERT_TRUE(ctx.mp().OSend(arr.get(), 1, 0).is_ok());
    } else {
      vm::Obj arr = ctx.mp().ORecv(0, 0);
      ASSERT_NE(arr, nullptr);
      ASSERT_EQ(vm::array_length(arr), kInts);
      for (int i = 0; i < kInts; i += 1021) {
        ASSERT_EQ((vm::get_element<std::int32_t>(arr, i)), i ^ 0x5aa5);
      }
    }
    ctx.mp().Barrier();
    const mpi::Device& dev = ctx.mp().direct().comm().device();
    // The array payload itself went through the direct path...
    if (ctx.rank() == 0) {
      EXPECT_GE(dev.bytes_direct(), kBytes);
    }
    // ...and any staging is bounded by control traffic (size headers,
    // serializer metadata on an unexpected arrival), never the payload.
    EXPECT_LT(dev.bytes_staged(), kBytes / 16);
  });
}

TEST(OoOpsTest, BufferPoolReusesAndTrims) {
  run_motor_world(test_config(), [](MotorContext& ctx) {
    ListTypes types(ctx.vm());
    BufferPool& pool = ctx.mp().direct().pool();
    const int peer = 1 - ctx.rank();
    vm::GcRoot node(ctx.thread(), types.make_node(ctx, 1, nullptr));

    // Sends stream gathered (no pool buffer); receives still land in
    // pooled buffers — ping-pong so BOTH ranks exercise the pool.
    for (int round = 0; round < 3; ++round) {
      if (ctx.rank() == 0) {
        ASSERT_TRUE(ctx.mp().OSend(node.get(), peer, round).is_ok());
        ASSERT_NE(ctx.mp().ORecv(peer, round), nullptr);
      } else {
        ASSERT_NE(ctx.mp().ORecv(peer, round), nullptr);
        ASSERT_TRUE(ctx.mp().OSend(node.get(), peer, round).is_ok());
      }
    }
    // The pool stack grew once and was reused afterwards (§7.5).
    EXPECT_GE(pool.reused(), 1u);
    EXPECT_GE(pool.idle_count(), 1u);

    // Two collections with no pool use -> idle buffers are unallocated.
    ctx.vm().heap().collect();
    ctx.vm().heap().collect();
    ctx.vm().heap().collect();
    EXPECT_GE(pool.trimmed(), 1u);
    EXPECT_EQ(pool.idle_count(), 0u);
    ctx.mp().Barrier();
  });
}

// The gathered-send hot path (OSend and friends) cycles its metadata
// stream through the static pool: after warm-up, steady-state sends take
// a warm buffer and create nothing. (Sender-side only — the receiver
// allocates managed objects, and its GC epochs may legitimately trim an
// idle pool buffer between rounds.)
TEST(OoOpsTest, GatheredSendSteadyStateCreatesNoBuffers) {
  run_motor_world(test_config(), [](MotorContext& ctx) {
    ListTypes types(ctx.vm());
    if (ctx.rank() == 0) {
      vm::GcRoot list(ctx.thread(), nullptr);
      for (int i = 0; i < 6; ++i) {
        list.set(types.make_node(ctx, i, list.get()));
      }
      mp::BufferPool& pool = ctx.mp().direct().pool();
      for (int warm = 0; warm < 4; ++warm) {
        ASSERT_TRUE(ctx.mp().OSend(list.get(), 1, warm).is_ok());
      }
      const std::uint64_t created = pool.created();
      const std::uint64_t reused = pool.reused();
      for (int round = 4; round < 40; ++round) {
        ASSERT_TRUE(ctx.mp().OSend(list.get(), 1, round).is_ok());
      }
      EXPECT_EQ(pool.created(), created)
          << "steady-state OSend must recycle the warm pool buffer";
      EXPECT_GE(pool.reused(), reused + 36);
    } else {
      for (int round = 0; round < 40; ++round) {
        ASSERT_NE(ctx.mp().ORecv(0, round), nullptr);
      }
    }
    ctx.mp().Barrier();
  });
}

}  // namespace
}  // namespace motor::mp
