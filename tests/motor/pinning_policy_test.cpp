// The Motor pinning policy in action (§7.4): elder-generation skip,
// blocking fast path, deferred pin at polling-wait, conditional pins for
// non-blocking operations — plus the kNeverPin ablation demonstrating why
// pinning is not optional.
#include <gtest/gtest.h>

#include "motor/motor_runtime.hpp"
#include "motor/motor_serializer.hpp"
#include "mpi/device.hpp"
#include "pal/clock.hpp"
#include "pal/event.hpp"
#include "pal/thread.hpp"
#include "transport/fabric.hpp"
#include "transport/faulty_channel.hpp"

namespace motor::mp {
namespace {

MotorWorldConfig policy_config(PinMode mode) {
  MotorWorldConfig c;
  c.vm.profile = vm::RuntimeProfile::uncosted();
  c.vm.heap.young_bytes = 128 * 1024;
  c.mp.pin_mode = mode;
  return c;
}

vm::Obj make_ints(MotorContext& ctx, int n, int base) {
  const vm::MethodTable* mt =
      ctx.vm().types().primitive_array(vm::ElementKind::kInt32);
  vm::Obj arr = ctx.vm().heap().alloc_array(mt, n);
  for (int i = 0; i < n; ++i) {
    vm::set_element<std::int32_t>(arr, i, base + i);
  }
  return arr;
}

TEST(PinningPolicyTest, ElderObjectsAreNeverPinned) {
  run_motor_world(policy_config(PinMode::kMotorPolicy), [](MotorContext& ctx) {
    vm::GcRoot arr(ctx.thread(), make_ints(ctx, 64, ctx.rank()));
    ctx.vm().heap().collect();  // promote the buffer to the elder gen
    ASSERT_TRUE(ctx.vm().heap().in_elder(arr.get()));

    const int peer = 1 - ctx.rank();
    // Receiver posts second so the sender's op is outstanding a while.
    for (int i = 0; i < 10; ++i) {
      if (ctx.rank() == 0) {
        ASSERT_TRUE(ctx.mp().Send(arr.get(), peer, i).is_ok());
      } else {
        ASSERT_TRUE(ctx.mp().Recv(arr.get(), peer, i).is_ok());
      }
    }
    const PinStats& st = ctx.mp().direct().policy().stats();
    EXPECT_EQ(st.blocking_pinned, 0u);
    EXPECT_EQ(ctx.vm().heap().stats().pin_calls, 0u);
    EXPECT_GT(st.blocking_elder_skip + st.blocking_fast_path, 0u);
  });
}

TEST(PinningPolicyTest, YoungBufferPinnedOnlyOnSlowPath) {
  // Rank 1 posts its recv only after rank 0 has committed to the Ssend
  // (event) and burned through the fast-path attempts (clock-driven gap),
  // so the young send must enter the polling-wait (slow path -> deferred
  // pin). The event replaces a fixed pre-send sleep that could misfire if
  // rank 0 was descheduled longer than the guess.
  pal::Event send_committed(pal::Event::ResetMode::kManual);
  run_motor_world(policy_config(PinMode::kMotorPolicy),
                  [&](MotorContext& ctx) {
    const int peer = 1 - ctx.rank();
    if (ctx.rank() == 0) {
      vm::GcRoot arr(ctx.thread(), make_ints(ctx, 1024, 7));
      ASSERT_TRUE(ctx.vm().heap().in_young(arr.get()));
      send_committed.set();
      ASSERT_TRUE(ctx.mp().Ssend(arr.get(), peer, 0).is_ok());
      const PinStats& st = ctx.mp().direct().policy().stats();
      EXPECT_EQ(st.blocking_pinned, 1u);  // pinned exactly once
      // Balanced pin/unpin: nothing left in the pin table.
      EXPECT_EQ(ctx.vm().heap().pin_table_size(), 0u);
    } else {
      send_committed.wait();
      const pal::Stopwatch gap;
      while (gap.elapsed_ns() < 5'000'000) pal::Thread::yield();
      vm::GcRoot arr(ctx.thread(), make_ints(ctx, 1024, 0));
      ASSERT_TRUE(ctx.mp().Recv(arr.get(), peer, 0).is_ok());
      EXPECT_EQ((vm::get_element<std::int32_t>(arr.get(), 3)), 10);
    }
  });
}

TEST(PinningPolicyTest, NonBlockingUsesConditionalPins) {
  run_motor_world(policy_config(PinMode::kMotorPolicy), [](MotorContext& ctx) {
    const int peer = 1 - ctx.rank();
    vm::GcRoot out(ctx.thread(), make_ints(ctx, 256, ctx.rank()));
    vm::GcRoot in(ctx.thread(), make_ints(ctx, 256, -1));
    ASSERT_TRUE(ctx.vm().heap().in_young(out.get()));

    MPRequest s = ctx.mp().ISend(out.get(), peer, 0);
    MPRequest r = ctx.mp().IRecv(in.get(), peer, 0);
    EXPECT_EQ(ctx.mp().direct().policy().stats().conditional_registered, 2u);
    EXPECT_EQ(ctx.vm().heap().conditional_pin_count(), 2u);

    ctx.mp().Wait(s);
    ctx.mp().Wait(r);
    EXPECT_EQ((vm::get_element<std::int32_t>(in.get(), 0)), peer);

    // After completion, the next collection retires the entries — no
    // explicit unpin anywhere (§4.3).
    ctx.vm().heap().collect();
    EXPECT_EQ(ctx.vm().heap().conditional_pin_count(), 0u);
    ctx.mp().Barrier();
  });
}

TEST(PinningPolicyTest, ConditionalPinHoldsBufferAcrossMidFlightGc) {
  // A GC between ISend and Wait must not corrupt the in-flight buffer.
  // Rank 1 holds its recv until rank 0 has finished both collections, so
  // the GCs are guaranteed to run while the send is still un-matched —
  // stronger than the fixed delay this replaces.
  pal::Event collected(pal::Event::ResetMode::kManual);
  run_motor_world(policy_config(PinMode::kMotorPolicy),
                  [&](MotorContext& ctx) {
    const int peer = 1 - ctx.rank();
    if (ctx.rank() == 0) {
      vm::GcRoot out(ctx.thread(), make_ints(ctx, 2048, 31));
      MPRequest s = ctx.mp().ISend(out.get(), peer, 0);
      // Collect while the send is still outstanding: the conditional pin
      // must keep the buffer in place while the transport reads it.
      ctx.vm().heap().collect();
      ctx.vm().heap().collect();
      collected.set();
      ASSERT_TRUE(ctx.mp().Wait(s).is_ok());
    } else {
      collected.wait();
      vm::GcRoot in(ctx.thread(), make_ints(ctx, 2048, 0));
      ASSERT_TRUE(ctx.mp().Recv(in.get(), peer, 0).is_ok());
      for (int i = 0; i < 2048; i += 97) {
        EXPECT_EQ((vm::get_element<std::int32_t>(in.get(), i)), 31 + i);
      }
    }
  });
}

TEST(PinningPolicyTest, AlwaysPinModePinsEveryYoungAndElderOp) {
  // Rank 0 sends only after rank 1 is committed to its recv (the pin
  // decision is the same on either path; the event just keeps the
  // recv-first ordering the old fixed delay aimed for).
  pal::Event recv_committed(pal::Event::ResetMode::kManual);
  run_motor_world(policy_config(PinMode::kAlwaysPin), [&](MotorContext& ctx) {
    const int peer = 1 - ctx.rank();
    vm::GcRoot arr(ctx.thread(), make_ints(ctx, 64, 0));
    ctx.vm().heap().collect();  // elder now — policy must STILL pin
    if (ctx.rank() == 0) {
      recv_committed.wait();
      ASSERT_TRUE(ctx.mp().Send(arr.get(), peer, 0).is_ok());
    } else {
      recv_committed.set();
      ASSERT_TRUE(ctx.mp().Recv(arr.get(), peer, 0).is_ok());
    }
    ctx.mp().Barrier();
    // kAlwaysPin never takes the elder skip.
    EXPECT_EQ(ctx.mp().direct().policy().stats().blocking_elder_skip, 0u);
  });
}

TEST(PinningPolicyTest, PolicySavesPinTrafficVersusAlwaysPin) {
  auto pin_calls_for = [](PinMode mode) {
    std::atomic<std::uint64_t> calls{0};
    MotorWorldConfig cfg = policy_config(mode);
    cfg.mp.fast_attempts = 64;  // generous fast path
    run_motor_world(cfg, [&calls](MotorContext& ctx) {
      const int peer = 1 - ctx.rank();
      vm::GcRoot arr(ctx.thread(), make_ints(ctx, 64, 0));
      ctx.vm().heap().collect();  // elder buffer: policy should skip pins
      for (int i = 0; i < 50; ++i) {
        if (ctx.rank() == 0) {
          ctx.mp().Send(arr.get(), peer, 0);
          ctx.mp().Recv(arr.get(), peer, 0);
        } else {
          ctx.mp().Recv(arr.get(), peer, 0);
          ctx.mp().Send(arr.get(), peer, 0);
        }
      }
      if (ctx.rank() == 0) calls += ctx.vm().heap().stats().pin_calls;
    });
    return calls.load();
  };
  const auto policy_pins = pin_calls_for(PinMode::kMotorPolicy);
  const auto always_pins = pin_calls_for(PinMode::kAlwaysPin);
  EXPECT_EQ(policy_pins, 0u);   // elder buffers: no pins at all
  EXPECT_GT(always_pins, 50u);  // wrapper behaviour pins relentlessly
}

TEST(PinningPolicyTest, PinBackingPinsYoungAndSkipsElder) {
  // Gathered sends carry raw spans into heap objects captured at
  // serialize time, so the backing pin happens eagerly (before any GC
  // poll) — but the elder-skip rule still applies.
  vm::VmConfig cfg;
  cfg.profile = vm::RuntimeProfile::uncosted();
  vm::Vm vm(cfg);
  vm::ManagedThread thread(vm);
  const vm::MethodTable* mt =
      vm.types().primitive_array(vm::ElementKind::kInt32);

  vm::GcRoot elder(thread, vm.heap().alloc_array(mt, 64));
  vm.heap().collect();  // promote
  ASSERT_TRUE(vm.heap().in_elder(elder.get()));
  vm::GcRoot young(thread, vm.heap().alloc_array(mt, 64));
  ASSERT_TRUE(vm.heap().in_young(young.get()));

  PinningPolicy policy(vm.heap(), PinMode::kMotorPolicy);
  const vm::Obj backing[] = {elder.get(), young.get(), nullptr};
  std::vector<vm::Obj> pinned;
  policy.pin_backing(backing, &pinned);

  ASSERT_EQ(pinned.size(), 1u);
  EXPECT_EQ(pinned[0], young.get());
  EXPECT_EQ(policy.stats().backing_pinned, 1u);
  EXPECT_EQ(policy.stats().backing_elder_skip, 1u);
  EXPECT_EQ(vm.heap().pin_table_size(), 1u);

  // A collection while pinned must not move the young buffer.
  const std::byte* before = vm::array_data(young.get());
  vm.heap().collect();
  EXPECT_EQ(vm::array_data(young.get()), before);

  policy.unpin_backing(pinned);
  EXPECT_EQ(vm.heap().pin_table_size(), 0u);
}

TEST(PinningPolicyTest, BackingPinsSurviveReliabilityRetryWindow) {
  // The hard case the backing pin exists for: a gathered send whose spans
  // point straight into the managed heap sits in the reliability layer's
  // retransmit window for thousands of polls while a lossy wire forces
  // retries — and the application thread keeps allocating and collecting
  // the whole time. The pin must hold the bytes still until the LAST
  // retransmit drains, not just the first copy.
  vm::VmConfig vcfg;
  vcfg.profile = vm::RuntimeProfile::uncosted();
  vcfg.heap.young_bytes = 256 * 1024;
  vm::Vm vmachine(vcfg);
  vm::ManagedThread thread(vmachine);
  const vm::MethodTable* mt =
      vmachine.types().primitive_array(vm::ElementKind::kInt32);

  vm::GcRoot arr(thread, vmachine.heap().alloc_array(mt, 8192));  // 32 KiB
  for (int i = 0; i < 8192; ++i) {
    vm::set_element<std::int32_t>(arr.get(), i, i ^ 0x55AA);
  }
  ASSERT_TRUE(vmachine.heap().in_young(arr.get()));

  MotorSerializer ser(vmachine);
  ByteBuffer flat;
  ASSERT_TRUE(ser.serialize(arr.get(), flat).is_ok());
  GatherRep rep;
  ASSERT_TRUE(ser.serialize_gather(arr.get(), rep).is_ok());
  ASSERT_EQ(rep.spans.total_bytes(), flat.size());
  ASSERT_FALSE(rep.backing.empty());  // payload referenced in place

  // Pin before the first GC poll — the spans were captured at serialize
  // time and are invalid the moment the array moves.
  PinningPolicy policy(vmachine.heap(), PinMode::kMotorPolicy);
  std::vector<vm::Obj> pinned;
  policy.pin_backing(rep.backing, &pinned);
  ASSERT_GT(policy.stats().backing_pinned, 0u);
  const std::byte* data_before = vm::array_data(arr.get());

  // A lossy forward wire: drops and bitflips force GBN retransmits that
  // re-read the pinned spans long after the first transmission.
  transport::Fabric fabric(2, transport::ChannelKind::kRing, 1 << 20);
  transport::FaultConfig faults;
  faults.seed = 21;
  faults.drop_rate = 0.15;
  faults.bitflip_rate = 0.05;
  fabric.inject_faults(0, 1, faults);

  mpi::DeviceConfig dcfg;
  dcfg.eager_threshold = 1024;
  dcfg.max_packet_payload = 4096;
  dcfg.reliability.enabled = true;
  dcfg.reliability.retry_timeout_polls = 32;
  dcfg.reliability.retry_timeout_cap_polls = 256;
  dcfg.reliability.max_retries = 64;
  mpi::Device a(fabric, 0, dcfg);
  mpi::Device b(fabric, 1, dcfg);

  std::vector<std::byte> in(flat.size());
  mpi::Request r = b.post_recv(in, 0, 0, 1);
  mpi::Request s = a.post_send(rep.spans, 1, 0, 1, false);

  bool done = false;
  for (int round = 0; round < 200000 && !done; ++round) {
    a.progress();
    b.progress();
    if (round % 64 == 63) {
      // GC pressure squarely inside the retry window.
      (void)vmachine.heap().alloc_array(mt, 512);
      vmachine.heap().collect();
      ASSERT_EQ(vm::array_data(arr.get()), data_before)
          << "pinned backing moved mid-flight at round " << round;
    }
    done = s->is_complete() && r->is_complete();
  }
  ASSERT_TRUE(done) << "faulty gathered send hung";
  EXPECT_EQ(s->error, ErrorCode::kSuccess);
  EXPECT_EQ(r->error, ErrorCode::kSuccess);
  EXPECT_GT(a.frames_retried(), 0u) << "wire too kind: no retry exercised";
  EXPECT_EQ(r->transferred, flat.size());
  EXPECT_TRUE(std::equal(in.begin(), in.end(), flat.span().begin()))
      << "delivered bytes differ from the flat serialization";

  policy.unpin_backing(pinned);
  vmachine.heap().collect();
  EXPECT_EQ(vmachine.heap().pin_table_size(), 0u);
  vmachine.heap().verify_heap();
}

TEST(PinningPolicyTest, PinBackingModes) {
  vm::VmConfig cfg;
  cfg.profile = vm::RuntimeProfile::uncosted();
  vm::Vm vm(cfg);
  vm::ManagedThread thread(vm);
  const vm::MethodTable* mt =
      vm.types().primitive_array(vm::ElementKind::kInt32);
  vm::GcRoot elder(thread, vm.heap().alloc_array(mt, 16));
  vm.heap().collect();
  vm::GcRoot young(thread, vm.heap().alloc_array(mt, 16));
  const vm::Obj backing[] = {elder.get(), young.get()};

  {
    PinningPolicy never(vm.heap(), PinMode::kNeverPin);
    std::vector<vm::Obj> pinned;
    never.pin_backing(backing, &pinned);
    EXPECT_TRUE(pinned.empty());
    EXPECT_EQ(never.stats().backing_pinned, 0u);
    EXPECT_EQ(vm.heap().pin_table_size(), 0u);
  }
  {
    // Wrapper-style: pins even the elder buffer.
    PinningPolicy always(vm.heap(), PinMode::kAlwaysPin);
    std::vector<vm::Obj> pinned;
    always.pin_backing(backing, &pinned);
    EXPECT_EQ(pinned.size(), 2u);
    EXPECT_EQ(always.stats().backing_pinned, 2u);
    EXPECT_EQ(always.stats().backing_elder_skip, 0u);
    always.unpin_backing(pinned);
    EXPECT_EQ(vm.heap().pin_table_size(), 0u);
  }
}

}  // namespace
}  // namespace motor::mp
