// Seeded round-trip property test for the Motor serializer's wire-plan
// cache (wire_plan.hpp). For pseudo-random object graphs — mixed
// primitive/reference fields, packed and gappy layouts, shared
// references, cycles, null refs, primitive and reference arrays — the
// plan path and the FieldDesc-walking ablation path must produce
// BYTE-IDENTICAL wire forms, and serialize→deserialize→serialize must be
// bit-identical under every on/off combination. The plan cache is a pure
// execution strategy; any wire divergence is a bug.
#include <gtest/gtest.h>

#include <cstring>

#include "common/prng.hpp"
#include "motor/motor_serializer.hpp"
#include "vm/handles.hpp"
#include "vm/vm.hpp"

namespace motor::mp {
namespace {

class SerializerRoundTripTest : public ::testing::Test {
 protected:
  SerializerRoundTripTest()
      : vm_([] {
          vm::VmConfig c;
          c.profile = vm::RuntimeProfile::uncosted();
          c.heap.young_bytes = 16 << 20;
          return c;
        }()),
        thread_(vm_) {
    packed_ = vm_.types()
                  .define_class("RtPacked")
                  .field("x", vm::ElementKind::kDouble)
                  .field("y", vm::ElementKind::kDouble)
                  .field("a", vm::ElementKind::kInt32)
                  .field("b", vm::ElementKind::kInt32)
                  .build();
    gappy_ = vm_.types()
                 .define_class("RtGappy")
                 .field("a", vm::ElementKind::kUInt8)
                 .field("b", vm::ElementKind::kInt64)
                 .field("c", vm::ElementKind::kUInt8)
                 .field("d", vm::ElementKind::kInt32)
                 .build();
    mixed_ = vm_.types()
                 .define_class("RtMixed")
                 .transportable()
                 .field("a", vm::ElementKind::kInt32)
                 .ref_field("r1", vm_.types().object_type(),
                            /*transportable=*/true)
                 .field("b", vm::ElementKind::kUInt8)
                 .ref_field("r2", vm_.types().object_type(),
                            /*transportable=*/false)
                 .field("c", vm::ElementKind::kDouble)
                 .ref_field("r3", vm_.types().object_type(),
                            /*transportable=*/true)
                 .field("d", vm::ElementKind::kInt16)
                 .build();
    mixed_arr_ = vm_.types().ref_array(mixed_);
    i32s_ = vm_.types().primitive_array(vm::ElementKind::kInt32);
    u8s_ = vm_.types().primitive_array(vm::ElementKind::kUInt8);
  }

  /// Fill an object's primitive fields (and array elements) with seeded
  /// random bits, raw through the instance data so NaN-pattern doubles
  /// and all byte values get exercised.
  void scribble(Prng& rng, vm::Obj obj) {
    const vm::MethodTable* mt = vm::obj_mt(obj);
    if (mt->is_array()) {
      if (mt->element_kind() == vm::ElementKind::kObjectRef) return;
      std::byte* p = vm::array_data(obj);
      for (std::size_t i = 0; i < vm::array_payload_bytes(obj); ++i) {
        p[i] = static_cast<std::byte>(rng.next_below(256));
      }
      return;
    }
    for (const vm::FieldDesc& f : mt->fields()) {
      if (f.is_reference()) continue;
      for (std::size_t i = 0; i < f.size(); ++i) {
        vm::obj_data(obj)[f.offset() + i] =
            static_cast<std::byte>(rng.next_below(256));
      }
    }
  }

  /// Build a random graph of `count` objects; references are wired after
  /// every allocation so shared refs and cycles appear across the whole
  /// pool (no GC can run during the wiring pass — it allocates nothing).
  vm::Obj make_graph(Prng& rng, vm::RootRange& pool, int count) {
    for (int i = 0; i < count; ++i) {
      vm::Obj obj = nullptr;
      switch (rng.next_below(6)) {
        case 0:
          obj = vm_.heap().alloc_object(packed_);
          break;
        case 1:
          obj = vm_.heap().alloc_object(gappy_);
          break;
        case 2:
        case 3:  // weight toward ref-bearing nodes
          obj = vm_.heap().alloc_object(mixed_);
          break;
        case 4:
          obj = vm_.heap().alloc_array(
              mixed_arr_, static_cast<std::int64_t>(rng.next_below(9)));
          break;
        default:
          // Lengths straddle kGatherInlineMax so both the inline and the
          // in-place gather payload paths appear.
          obj = vm_.heap().alloc_array(
              rng.next_bool() ? i32s_ : u8s_,
              static_cast<std::int64_t>(rng.next_below(600)));
          break;
      }
      scribble(rng, obj);
      pool.add(obj);
    }

    auto maybe_ref = [&]() -> vm::Obj {
      if (rng.next_bool(0.3)) return nullptr;
      return pool.at(rng.next_below(pool.size()));
    };
    for (std::size_t i = 0; i < pool.size(); ++i) {
      vm::Obj obj = pool.at(i);
      const vm::MethodTable* mt = vm::obj_mt(obj);
      if (mt == mixed_) {
        for (const vm::FieldDesc& f : mt->fields()) {
          if (f.is_reference()) {
            vm::set_ref_field(obj, f.offset(), maybe_ref());
          }
        }
      } else if (mt->is_array() &&
                 mt->element_kind() == vm::ElementKind::kObjectRef) {
        for (std::int64_t e = 0; e < vm::array_length(obj); ++e) {
          vm::set_ref_element(obj, e, maybe_ref());
        }
      }
    }
    return pool.at(rng.next_below(pool.size()));
  }

  static void expect_same_bytes(const ByteBuffer& a, const ByteBuffer& b,
                                const char* what, std::uint64_t seed) {
    ASSERT_EQ(a.size(), b.size()) << what << " seed=" << seed;
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size()))
        << what << " seed=" << seed;
  }

  vm::Vm vm_;
  vm::ManagedThread thread_;
  const vm::MethodTable* packed_;
  const vm::MethodTable* gappy_;
  const vm::MethodTable* mixed_;
  const vm::MethodTable* mixed_arr_;
  const vm::MethodTable* i32s_;
  const vm::MethodTable* u8s_;
};

TEST_F(SerializerRoundTripTest, PlansOnAndOffAreWireAndGraphEquivalent) {
  MotorSerializer on(vm_, VisitedMode::kHashed, /*plan_cache=*/true);
  MotorSerializer off(vm_, VisitedMode::kHashed, /*plan_cache=*/false);

  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Prng rng(seed);
    vm::RootRange pool(thread_);
    const int count = 8 + static_cast<int>((seed * 13) % 120);
    vm::GcRoot root(thread_, make_graph(rng, pool, count));

    // Property 1: both wire forms are byte-identical.
    ByteBuffer w_on, w_off;
    ASSERT_TRUE(on.serialize(root.get(), w_on).is_ok()) << "seed " << seed;
    ASSERT_TRUE(off.serialize(root.get(), w_off).is_ok()) << "seed " << seed;
    expect_same_bytes(w_on, w_off, "flat wire on-vs-off", seed);

    // Property 2: the gathered representation concatenates to the same
    // bytes under both strategies (plans must keep feeding SpanVec).
    for (MotorSerializer* ser : {&on, &off}) {
      GatherRep rep;
      ASSERT_TRUE(ser->serialize_gather(root.get(), rep).is_ok());
      ASSERT_EQ(rep.total_bytes(), w_on.size()) << "seed " << seed;
      std::vector<std::byte> joined(rep.total_bytes());
      rep.spans.copy_to(joined);
      EXPECT_EQ(0, std::memcmp(joined.data(), w_on.data(), w_on.size()))
          << "gather seed " << seed;
    }

    // Property 3: deserialize with each strategy, re-serialize with the
    // OTHER one — every combination reproduces the original bytes, so
    // the graph round-trips bit-identically.
    w_on.seek(0);
    vm::Obj got_on = nullptr;
    ASSERT_TRUE(on.deserialize(w_on, thread_, &got_on).is_ok());
    vm::GcRoot copy_on(thread_, got_on);
    w_off.seek(0);
    vm::Obj got_off = nullptr;
    ASSERT_TRUE(off.deserialize(w_off, thread_, &got_off).is_ok());
    vm::GcRoot copy_off(thread_, got_off);

    ByteBuffer w_on2, w_off2;
    ASSERT_TRUE(off.serialize(copy_on.get(), w_on2).is_ok());
    ASSERT_TRUE(on.serialize(copy_off.get(), w_off2).is_ok());
    expect_same_bytes(w_on, w_on2, "roundtrip plan->ablation", seed);
    expect_same_bytes(w_on, w_off2, "roundtrip ablation->plan", seed);
  }

  // The plan cache stayed bounded by distinct types while hits scaled
  // with the objects pushed through it.
  EXPECT_LE(on.stats().plan_builds, 4u);  // 3 class types + System.Object
  EXPECT_GT(on.stats().plan_hits, on.stats().plan_builds * 16);
  EXPECT_GE(on.stats().fields_copied, on.stats().runs_copied);
  EXPECT_EQ(off.stats().plan_builds, 0u);
}

TEST_F(SerializerRoundTripTest, WindowAndSplitFormsMatchAcrossPlanModes) {
  MotorSerializer on(vm_, VisitedMode::kHashed, /*plan_cache=*/true);
  MotorSerializer off(vm_, VisitedMode::kHashed, /*plan_cache=*/false);

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Prng rng(100 + seed);
    // Reference-array window: class records inside a windowed piece.
    vm::RootRange pool(thread_);
    const std::int64_t len = 4 + static_cast<std::int64_t>(rng.next_below(12));
    vm::GcRoot arr(thread_, vm_.heap().alloc_array(mixed_arr_, len));
    pool.add(arr.get());
    for (std::int64_t i = 0; i < len; ++i) {
      vm::Obj node = vm_.heap().alloc_object(mixed_);
      scribble(rng, node);
      for (const vm::FieldDesc& f : mixed_->fields()) {
        if (f.is_reference()) vm::set_ref_field(node, f.offset(), nullptr);
      }
      vm::set_ref_element(arr.get(), i, node);
    }
    const std::int64_t offset =
        static_cast<std::int64_t>(rng.next_below(len));
    const std::int64_t count =
        static_cast<std::int64_t>(rng.next_below(len - offset + 1));

    ByteBuffer w_on, w_off;
    ASSERT_TRUE(
        on.serialize_array_window(arr.get(), offset, count, w_on).is_ok());
    ASSERT_TRUE(
        off.serialize_array_window(arr.get(), offset, count, w_off).is_ok());
    expect_same_bytes(w_on, w_off, "window wire on-vs-off", seed);

    // Split representation: every piece identical across modes.
    std::vector<std::int64_t> counts;
    std::int64_t left = len;
    while (left > 0) {
      const std::int64_t c =
          std::min<std::int64_t>(left, 1 + rng.next_below(5));
      counts.push_back(c);
      left -= c;
    }
    std::vector<ByteBuffer> p_on, p_off;
    ASSERT_TRUE(on.serialize_split(arr.get(), counts, p_on).is_ok());
    ASSERT_TRUE(off.serialize_split(arr.get(), counts, p_off).is_ok());
    ASSERT_EQ(p_on.size(), p_off.size());
    for (std::size_t i = 0; i < p_on.size(); ++i) {
      expect_same_bytes(p_on[i], p_off[i], "split piece", seed);
    }
  }
}

}  // namespace
}  // namespace motor::mp
