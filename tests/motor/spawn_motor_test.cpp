// Transparent process management (the paper's §9 future work, implemented
// as an extension): spawned ranks transparently receive complete Motor
// runtimes and talk to parents via their own System.MP communicators.
#include <gtest/gtest.h>

#include "motor/motor_runtime.hpp"

namespace motor::mp {
namespace {

MotorWorldConfig test_config(int ranks = 1) {
  MotorWorldConfig c;
  c.ranks = ranks;
  c.vm.profile = vm::RuntimeProfile::uncosted();
  return c;
}

TEST(SpawnMotorTest, WorkersGetTransparentRuntimes) {
  std::atomic<int> workers_ran{0};
  run_motor_world(test_config(1), [&workers_ran](MotorContext& ctx) {
    EXPECT_FALSE(ctx.has_parent());

    Communicator inter = spawn_motor_workers(
        ctx, /*root=*/0, /*n_workers=*/2,
        [&workers_ran](MotorContext& worker) {
          ++workers_ran;
          ASSERT_TRUE(worker.has_parent());
          // The worker's runtime is fully initialized: allocate, collect,
          // then OSend a tree to the parent with zero extra setup.
          auto& ts = worker.vm().types();
          const vm::MethodTable* ints =
              ts.primitive_array(vm::ElementKind::kInt32);
          const vm::MethodTable* node =
              ts.define_class("Result")
                  .transportable()
                  .ref_field("data", ints, true)
                  .field("worker", vm::ElementKind::kInt32)
                  .build();
          vm::GcRoot data(worker.thread(),
                          worker.vm().heap().alloc_array(ints, 3));
          for (int i = 0; i < 3; ++i) {
            vm::set_element<std::int32_t>(data.get(), i,
                                          worker.rank() * 10 + i);
          }
          vm::GcRoot result(worker.thread(),
                            worker.vm().heap().alloc_object(node));
          vm::set_ref_field(result.get(), 0, data.get());
          vm::set_field<std::int32_t>(result.get(), 8, worker.rank());
          worker.vm().heap().collect();  // worker GC is live too
          ASSERT_TRUE(
              worker.parent_mp().OSend(result.get(), 0, 0).is_ok());
        });

    // Parent: receive both results over the intercommunicator.
    const vm::MethodTable* ints =
        ctx.vm().types().primitive_array(vm::ElementKind::kInt32);
    const vm::MethodTable* node =
        ctx.vm()
            .types()
            .define_class("Result")
            .transportable()
            .ref_field("data", ints, true)
            .field("worker", vm::ElementKind::kInt32)
            .build();
    (void)node;
    int worker_sum = 0;
    for (int i = 0; i < 2; ++i) {
      MpStatus st;
      vm::Obj result = inter.ORecv(kAnySource, 0, &st);
      ASSERT_NE(result, nullptr);
      const auto worker_id = vm::get_field<std::int32_t>(result, 8);
      worker_sum += worker_id;
      vm::Obj data = vm::get_ref_field(result, 0);
      EXPECT_EQ((vm::get_element<std::int32_t>(data, 2)), worker_id * 10 + 2);
    }
    EXPECT_EQ(worker_sum, 0 + 1);
  });
  EXPECT_EQ(workers_ran.load(), 2);
}

TEST(SpawnMotorTest, SpawnIsCollectiveOverParents) {
  run_motor_world(test_config(2), [](MotorContext& ctx) {
    Communicator inter = spawn_motor_workers(
        ctx, 0, 2, [](MotorContext& worker) {
          // Worker i pings parent i.
          const vm::MethodTable* ints =
              worker.vm().types().primitive_array(vm::ElementKind::kInt32);
          vm::GcRoot arr(worker.thread(),
                         worker.vm().heap().alloc_array(ints, 1));
          vm::set_element<std::int32_t>(arr.get(), 0, worker.rank() + 40);
          ASSERT_TRUE(
              worker.parent_mp().Send(arr.get(), worker.rank(), 0).is_ok());
        });
    EXPECT_EQ(inter.Size(), 2);  // local (parent) group
    const vm::MethodTable* ints =
        ctx.vm().types().primitive_array(vm::ElementKind::kInt32);
    vm::GcRoot arr(ctx.thread(), ctx.vm().heap().alloc_array(ints, 1));
    ASSERT_TRUE(inter.Recv(arr.get(), ctx.rank(), 0).is_ok());
    EXPECT_EQ((vm::get_element<std::int32_t>(arr.get(), 0)), ctx.rank() + 40);
  });
}

}  // namespace
}  // namespace motor::mp
