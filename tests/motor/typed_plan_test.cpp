// The compile-time wire plans (motor/typed): concept gates, leaf
// flattening, run coalescing, the closed-form stream sizes, and the
// VM-free codec round trips. Everything TypedPlan computes is constexpr,
// so most of this suite is static_asserts that run at compile time — the
// gtest bodies cover the codec's runtime behaviour and error paths.
#include "motor/typed/typed.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace motor::typed {
namespace {

struct Packed {
  double x;
  double y;
  std::int32_t a;
  std::int32_t b;
};

struct Padded {
  std::uint8_t a;   // 0..1, then 7 bytes of padding
  double b;         // 8..16
  std::int16_t c;   // 16..18, tail padding to 24
};

struct Inner {
  float u;
  float v;
};

struct Outer {
  std::int32_t id;  // 0..4
  Inner in;         // 4..12 (nested described struct inlines its leaves)
  double w;         // 16..24 (4 bytes padding before)
};

struct WithArray {
  double pos[3];    // 0..24, three leaves coalescing into one run
  std::int32_t tag; // 24..28
};

}  // namespace
}  // namespace motor::typed

MOTOR_TYPED_STRUCT(motor::typed::Packed, x, y, a, b);
MOTOR_TYPED_STRUCT(motor::typed::Padded, a, b, c);
MOTOR_TYPED_STRUCT_NAMED(motor::typed::Inner, "Inner", u, v);
MOTOR_TYPED_STRUCT_NAMED(motor::typed::Outer, "Outer", id, in, w);
MOTOR_TYPED_STRUCT_NAMED(motor::typed::WithArray, "WithArray", pos, tag);

namespace motor::typed {
namespace {

// ---- concepts --------------------------------------------------------

static_assert(motor_scalar<float> && motor_scalar<double>);
static_assert(motor_scalar<std::int8_t> && motor_scalar<std::uint64_t>);
static_assert(motor_scalar<bool> && motor_scalar<char16_t>);
static_assert(!motor_scalar<long double>);
static_assert(!motor_scalar<Packed>);
static_assert(motor_described<Packed> && motor_described<Outer>);
static_assert(!motor_described<float>);
static_assert(motor_wireable<double> && motor_wireable<WithArray>);
static_assert(!motor_wireable<void*>);
static_assert(motor_span_like<std::vector<float>>);
static_assert(motor_span_like<std::span<const Packed>>);
static_assert(!motor_span_like<std::vector<void*>>);

static_assert(kind_of<float>() == vm::ElementKind::kFloat);
static_assert(kind_of<bool>() == vm::ElementKind::kBool);
static_assert(kind_of<char16_t>() == vm::ElementKind::kChar);
static_assert(kind_of<std::int64_t>() == vm::ElementKind::kInt64);
static_assert(kind_of<std::uint16_t>() == vm::ElementKind::kUInt16);

// ---- plans -----------------------------------------------------------

// A gapless struct collapses to a single run covering the whole object:
// records can be memcpy'd (or referenced in place) straight from arrays.
static_assert(TypedPlan<Packed>::ops.size() == 1);
static_assert(TypedPlan<Packed>::wire_bytes == 24);
static_assert(TypedPlan<Packed>::contiguous);
static_assert(sizeof(Packed) == 24);

// Padding holes break runs; the trailing leaf at the end of the second
// run extends it (b at 8..16, c at 16..18 coalesce).
static_assert(TypedPlan<Padded>::ops.size() == 2);
static_assert(TypedPlan<Padded>::ops[0].offset == 0 &&
              TypedPlan<Padded>::ops[0].bytes == 1);
static_assert(TypedPlan<Padded>::ops[1].offset == 8 &&
              TypedPlan<Padded>::ops[1].bytes == 10);
static_assert(TypedPlan<Padded>::wire_bytes == 11);
static_assert(!TypedPlan<Padded>::contiguous);

// Nested structs inline their leaves at shifted offsets; the id/in pair
// is gapless (0..12), then padding before w breaks the run.
static_assert(TypedPlan<Outer>::ops.size() == 2);
static_assert(TypedPlan<Outer>::ops[0].offset == 0 &&
              TypedPlan<Outer>::ops[0].bytes == 12);
static_assert(TypedPlan<Outer>::ops[1].offset == 16 &&
              TypedPlan<Outer>::ops[1].bytes == 8);
static_assert(TypedPlan<Outer>::wire_bytes == 20);

// Bounded arrays repeat their element's leaves stride by stride — all
// adjacent, so the whole struct is one run.
static_assert(TypedPlan<WithArray>::ops.size() == 1);
static_assert(TypedPlan<WithArray>::wire_bytes == 28);
// Single-run but NOT contiguous: tail padding makes sizeof(WithArray) 32,
// so records still gather run-by-run rather than memcpy'ing whole objects.
static_assert(TypedPlan<WithArray>::single_run);
static_assert(!TypedPlan<WithArray>::contiguous);
static_assert(sizeof(WithArray) == 32);

// Scalars have the trivial single-leaf plan.
static_assert(TypedPlan<double>::ops.size() == 1);
static_assert(TypedPlan<double>::wire_bytes == 8);
static_assert(TypedPlan<double>::contiguous);

// The plan's view is the same currency the runtime plan cache produces.
static_assert(TypedPlan<Packed>::view().single_run);
static_assert(TypedPlan<Packed>::view().wire_bytes == 24);
static_assert(TypedPlan<Padded>::view().ops.size() == 2);

// ---- closed-form stream sizes ----------------------------------------

TEST(TypedPlanTest, ScalarStreamSizeClosedForm) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                        std::size_t{1000}}) {
    std::vector<float> v(n, 1.5f);
    ByteBuffer out;
    serialize_span(std::span<const float>(v), out);
    EXPECT_EQ(out.size(), span_stream_bytes<float>(n)) << "n=" << n;
  }
}

TEST(TypedPlanTest, DescribedStreamSizeClosedForm) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{13}}) {
    std::vector<Padded> v(n);
    ByteBuffer out;
    serialize_span(std::span<const Padded>(v), out);
    EXPECT_EQ(out.size(), span_stream_bytes<Padded>(n)) << "n=" << n;
  }
}

TEST(TypedPlanTest, SerializeDoesExactlyOneReserve) {
  // The zero-overhead contract: closed-form sizes mean one capacity
  // decision per stream, so a fresh buffer grows exactly once.
  std::vector<Packed> v(64, Packed{1.0, 2.0, 3, 4});
  ByteBuffer out;
  const std::uint64_t before = out.growth_count();
  serialize_span(std::span<const Packed>(v), out);
  EXPECT_LE(out.growth_count() - before, 1u);
}

// ---- codec round trips (no VM anywhere) ------------------------------

TEST(TypedPlanTest, ScalarSpanRoundTrip) {
  std::vector<std::int32_t> v{1, -2, 3, -4, 5};
  ByteBuffer buf;
  serialize_span(std::span<const std::int32_t>(v), buf);
  buf.seek(0);
  std::vector<std::int32_t> back;
  ASSERT_TRUE(deserialize_span(buf, back).is_ok());
  EXPECT_EQ(back, v);
}

TEST(TypedPlanTest, EmptySpanRoundTrip) {
  ByteBuffer buf;
  serialize_span(std::span<const double>{}, buf);
  buf.seek(0);
  std::vector<double> back{1.0, 2.0};
  ASSERT_TRUE(deserialize_span(buf, back).is_ok());
  EXPECT_TRUE(back.empty());

  ByteBuffer obuf;
  serialize_span(std::span<const Packed>{}, obuf);
  obuf.seek(0);
  std::vector<Packed> oback(3);
  ASSERT_TRUE(deserialize_span(obuf, oback).is_ok());
  EXPECT_TRUE(oback.empty());
}

TEST(TypedPlanTest, DescribedSpanRoundTrip) {
  std::vector<Padded> v;
  for (int i = 0; i < 9; ++i) {
    Padded p{};
    p.a = static_cast<std::uint8_t>(i);
    p.b = i * 1.25;
    p.c = static_cast<std::int16_t>(-i);
    v.push_back(p);
  }
  ByteBuffer buf;
  serialize_span(std::span<const Padded>(v), buf);
  buf.seek(0);
  std::vector<Padded> back;
  ASSERT_TRUE(deserialize_span(buf, back).is_ok());
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(back[i].a, v[i].a);
    EXPECT_EQ(back[i].b, v[i].b);
    EXPECT_EQ(back[i].c, v[i].c);
  }
}

TEST(TypedPlanTest, NestedValueRoundTrip) {
  Outer o{};
  o.id = 42;
  o.in = Inner{1.5f, -2.5f};
  o.w = 3.25;
  ByteBuffer buf;
  serialize_value(o, buf);
  buf.seek(0);
  Outer back{};
  ASSERT_TRUE(deserialize_value(buf, &back).is_ok());
  EXPECT_EQ(back.id, 42);
  EXPECT_EQ(back.in.u, 1.5f);
  EXPECT_EQ(back.in.v, -2.5f);
  EXPECT_EQ(back.w, 3.25);
}

TEST(TypedPlanTest, DeserializeIntoExactLength) {
  std::vector<float> v(16, 2.0f);
  ByteBuffer buf;
  serialize_span(std::span<const float>(v), buf);

  buf.seek(0);
  std::vector<float> exact(16);
  ASSERT_TRUE(deserialize_span_into(buf, std::span<float>(exact)).is_ok());
  EXPECT_EQ(exact, v);

  buf.seek(0);
  std::vector<float> wrong(8);
  Status st = deserialize_span_into(buf, std::span<float>(wrong));
  EXPECT_EQ(st.code(), ErrorCode::kCountError);
}

TEST(TypedPlanTest, GatherConcatenationIsByteIdentical) {
  // Below the inline threshold the gather variant degrades to the flat
  // encoding; above it the payload is referenced in place. Either way the
  // concatenation of the parts must equal serialize_span()'s bytes.
  for (std::size_t n : {std::size_t{4}, std::size_t{4096}}) {
    std::vector<float> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<float>(i) * 0.5f;

    ByteBuffer flat;
    serialize_span(std::span<const float>(v), flat);

    ByteBuffer meta;
    SpanVec sv;
    serialize_span_gather(std::span<const float>(v), meta, sv);
    ASSERT_EQ(sv.total_bytes(), flat.size());
    std::vector<std::byte> gathered;
    for (ByteSpan part : sv.parts()) {
      gathered.insert(gathered.end(), part.begin(), part.end());
    }
    EXPECT_EQ(std::memcmp(gathered.data(), flat.data(), flat.size()), 0)
        << "n=" << n;
    // Large payloads must be referenced, not copied: the metadata buffer
    // stays header-sized.
    if (n * sizeof(float) >= kGatherInlineMax) {
      EXPECT_LT(meta.size(), kGatherInlineMax);
      EXPECT_EQ(sv.part_count(), 2u);
    }
  }
}

TEST(TypedPlanTest, RejectsCorruptStreams) {
  std::vector<float> v(4, 1.0f);
  ByteBuffer buf;
  serialize_span(std::span<const float>(v), buf);

  // Bad magic.
  ByteBuffer bad;
  bad.append(buf.span());
  bad.overwrite_at(0, std::uint32_t{0xDEADBEEF});
  bad.seek(0);
  std::vector<float> out;
  EXPECT_FALSE(deserialize_span(bad, out).is_ok());

  // Wrong element type: a float[] stream is not an int32[] stream.
  buf.seek(0);
  std::vector<std::int32_t> ints;
  EXPECT_FALSE(deserialize_span(buf, ints).is_ok());

  // Truncated payload.
  ByteBuffer cut;
  cut.append(ByteSpan{buf.data(), buf.size() - 3});
  cut.seek(0);
  EXPECT_FALSE(deserialize_span(cut, out).is_ok());
}

}  // namespace
}  // namespace motor::typed
