// Typed transport end-to-end: native spans and described structs across
// ranks, interop with the managed OO operations in both directions (the
// byte-identity of typed_wire_identity_test.cpp, now over a real wire),
// and the parameter server's typed hot paths (Pull-into-span,
// PutObject<T>/GetObject<T>).
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "motor/motor_runtime.hpp"
#include "motor/typed/typed.hpp"
#include "ps/ps.hpp"

namespace motor::typed {
namespace {

struct TtVec3 {
  double x;
  double y;
  double z;
};

struct TtRecord {
  std::int32_t a;
  float b;
};

}  // namespace
}  // namespace motor::typed

MOTOR_TYPED_STRUCT_NAMED(motor::typed::TtVec3, "TtVec3", x, y, z);
MOTOR_TYPED_STRUCT_NAMED(motor::typed::TtRecord, "TtRecord", a, b);

namespace motor::typed {
namespace {

mp::MotorWorldConfig world_config(int ranks) {
  mp::MotorWorldConfig c;
  c.ranks = ranks;
  c.vm.profile = vm::RuntimeProfile::uncosted();
  c.vm.heap.young_bytes = 512 * 1024;
  return c;
}

TEST(TypedTransportTest, ScalarSpanAcrossRanks) {
  run_motor_world(world_config(2), [](mp::MotorContext& ctx) {
    // 4 KiB payload: above the inline threshold, so the send is gathered
    // (metadata + in-place payload reference).
    std::vector<float> data(1024);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<float>(i) * 0.25f;
    }
    if (ctx.rank() == 0) {
      ASSERT_TRUE(
          send_span(ctx.mp().direct(), std::span<const float>(data), 1, 5).is_ok());
      // Small payload (inline path) on a second tag.
      std::vector<std::int32_t> small{1, 2, 3};
      ASSERT_TRUE(
          send_span(ctx.mp().direct(), std::span<const std::int32_t>(small), 1, 6)
              .is_ok());
    } else {
      std::vector<float> got;
      ASSERT_TRUE(recv_span(ctx.mp().direct(), got, 0, 5).is_ok());
      ASSERT_EQ(got.size(), data.size());
      EXPECT_EQ(std::memcmp(got.data(), data.data(),
                            data.size() * sizeof(float)),
                0);
      std::vector<std::int32_t> small;
      ASSERT_TRUE(recv_span(ctx.mp().direct(), small, 0, 6).is_ok());
      EXPECT_EQ(small, (std::vector<std::int32_t>{1, 2, 3}));
    }
  });
}

TEST(TypedTransportTest, DescribedSpanAcrossRanks) {
  run_motor_world(world_config(2), [](mp::MotorContext& ctx) {
    std::vector<TtVec3> pts;
    for (int i = 0; i < 32; ++i) {
      pts.push_back(TtVec3{i * 1.0, i * 2.0, i * 3.0});
    }
    if (ctx.rank() == 0) {
      ASSERT_TRUE(
          send_span(ctx.mp().direct(), std::span<const TtVec3>(pts), 1, 9).is_ok());
    } else {
      std::vector<TtVec3> got;
      ASSERT_TRUE(recv_span(ctx.mp().direct(), got, 0, 9).is_ok());
      ASSERT_EQ(got.size(), pts.size());
      for (std::size_t i = 0; i < pts.size(); ++i) {
        EXPECT_EQ(got[i].x, pts[i].x);
        EXPECT_EQ(got[i].y, pts[i].y);
        EXPECT_EQ(got[i].z, pts[i].z);
      }
    }
  });
}

TEST(TypedTransportTest, TypedSendManagedReceive) {
  // The identity property over a real wire: a typed sender, a reflective
  // (ORecv) receiver that has never heard of the C++ struct — only its
  // managed twin.
  run_motor_world(world_config(2), [](mp::MotorContext& ctx) {
    if (ctx.rank() == 0) {
      std::vector<float> data(300);  // > inline threshold
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<float>(i);
      }
      ASSERT_TRUE(
          send_span(ctx.mp().direct(), std::span<const float>(data), 1, 3).is_ok());

      TtRecord rec{7, 2.5f};
      ASSERT_TRUE(send_value(ctx.mp().direct(), rec, 1, 4).is_ok());
    } else {
      // A reflective receiver resolves types by name, so the stream's
      // types must exist in its TypeSystem: the primitive array type for
      // the span, the managed twin for the struct.
      ctx.vm().types().primitive_array(vm::ElementKind::kFloat);
      vm::Obj arr = ctx.mp().ORecv(0, 3);
      ASSERT_NE(arr, nullptr);
      ASSERT_EQ(vm::array_length(arr), 300);
      EXPECT_EQ((vm::get_element<float>(arr, 0)), 0.0f);
      EXPECT_EQ((vm::get_element<float>(arr, 299)), 299.0f);

      // The receiver needs the twin class defined before the record
      // arrives at its deserializer.
      const vm::MethodTable* mt =
          register_managed_twin<TtRecord>(ctx.vm().types());
      vm::Obj obj = ctx.mp().ORecv(0, 4);
      ASSERT_NE(obj, nullptr);
      EXPECT_EQ(vm::obj_mt(obj), mt);
      EXPECT_EQ((vm::get_field<std::int32_t>(obj, mt->fields()[0].offset())),
                7);
      EXPECT_EQ((vm::get_field<float>(obj, mt->fields()[1].offset())), 2.5f);
    }
  });
}

TEST(TypedTransportTest, ManagedSendTypedReceive) {
  run_motor_world(world_config(2), [](mp::MotorContext& ctx) {
    if (ctx.rank() == 0) {
      const vm::MethodTable* ints =
          ctx.vm().types().primitive_array(vm::ElementKind::kInt32);
      vm::GcRoot arr(ctx.thread(), ctx.vm().heap().alloc_array(ints, 64));
      for (int i = 0; i < 64; ++i) {
        vm::set_element<std::int32_t>(arr.get(), i, i * i);
      }
      ASSERT_TRUE(ctx.mp().OSend(arr.get(), 1, 11).is_ok());

      const vm::MethodTable* mt =
          register_managed_twin<TtRecord>(ctx.vm().types());
      vm::GcRoot obj(ctx.thread(), ctx.vm().new_object(mt));
      vm::set_field<std::int32_t>(obj.get(), mt->fields()[0].offset(), 21);
      vm::set_field<float>(obj.get(), mt->fields()[1].offset(), -0.5f);
      ASSERT_TRUE(ctx.mp().OSend(obj.get(), 1, 12).is_ok());
    } else {
      std::vector<std::int32_t> got;
      ASSERT_TRUE(recv_span(ctx.mp().direct(), got, 0, 11).is_ok());
      ASSERT_EQ(got.size(), 64u);
      EXPECT_EQ(got[8], 64);

      TtRecord rec{};
      ASSERT_TRUE(recv_value(ctx.mp().direct(), &rec, 0, 12).is_ok());
      EXPECT_EQ(rec.a, 21);
      EXPECT_EQ(rec.b, -0.5f);
    }
  });
}

// ---- parameter server ------------------------------------------------

ps::PsConfig ps_config() {
  ps::PsConfig c;
  c.servers = 1;
  c.flush_records = 16;
  c.flush_bytes = 4096;
  c.flush_deadline_ns = 200'000;
  c.window_batches = 4;
  c.serve_timeout_ns = 30ull * 1000 * 1000 * 1000;
  c.op_timeout_ns = 30ull * 1000 * 1000 * 1000;
  return c;
}

TEST(TypedTransportTest, PsPullIntoSpan) {
  run_motor_world(world_config(2), [](mp::MotorContext& ctx) {
    ps::PsNode node(ctx, ps_config());
    if (node.is_server()) {
      ASSERT_TRUE(node.server().Serve().is_ok());
      return;
    }
    ps::PsClient& cl = node.client();
    const std::vector<float> delta{1.0f, 2.0f, 3.0f, 4.0f};
    ASSERT_TRUE(cl.Push(70, delta).is_ok());
    ASSERT_TRUE(cl.Flush().is_ok());

    // Exact-size pull into caller-owned storage: the hot path.
    std::vector<float> out(4, 0.0f);
    ASSERT_TRUE(cl.Pull(70, std::span<float>(out)).is_ok());
    EXPECT_EQ(out, delta);

    // A mis-sized span is a kCountError, not a resize.
    std::vector<float> wrong(3);
    Status st = cl.Pull(70, std::span<float>(wrong));
    EXPECT_EQ(st.code(), ErrorCode::kCountError);

    ASSERT_TRUE(cl.Close().is_ok());
  });
}

TEST(TypedTransportTest, PsTypedObjectRoundTrip) {
  run_motor_world(world_config(2), [](mp::MotorContext& ctx) {
    // The server deserializes PutObject payloads into its own VM, so
    // every rank that may store these types needs their managed twins.
    register_managed_twin<TtVec3>(ctx.vm().types());
    register_managed_twin<TtRecord>(ctx.vm().types());
    ps::PsNode node(ctx, ps_config());
    if (node.is_server()) {
      ASSERT_TRUE(node.server().Serve().is_ok());
      EXPECT_EQ(node.server().stats().object_puts, 3u);
      return;
    }
    ps::PsClient& cl = node.client();

    // Pure native round trip: no VM types involved anywhere.
    ASSERT_TRUE(cl.PutObject(5, TtVec3{1.0, 2.0, 3.0}).is_ok());
    TtVec3 back{};
    ASSERT_TRUE(cl.GetObject(5, &back).is_ok());
    EXPECT_EQ(back.x, 1.0);
    EXPECT_EQ(back.y, 2.0);
    EXPECT_EQ(back.z, 3.0);

    // Interop: typed put, managed (reflective) get — the client's VM
    // deserializes the stored bytes into the twin class.
    const vm::MethodTable* mt =
        register_managed_twin<TtRecord>(ctx.vm().types());
    ASSERT_TRUE(cl.PutObject(6, TtRecord{33, 1.25f}).is_ok());
    vm::Obj obj = nullptr;
    ASSERT_TRUE(cl.GetObject(6, &obj).is_ok());
    ASSERT_NE(obj, nullptr);
    EXPECT_EQ(vm::obj_mt(obj), mt);
    EXPECT_EQ((vm::get_field<std::int32_t>(obj, mt->fields()[0].offset())),
              33);
    EXPECT_EQ((vm::get_field<float>(obj, mt->fields()[1].offset())), 1.25f);

    // And the reverse: managed put, typed get.
    vm::GcRoot mobj(ctx.thread(), ctx.vm().new_object(mt));
    vm::set_field<std::int32_t>(mobj.get(), mt->fields()[0].offset(), 44);
    vm::set_field<float>(mobj.get(), mt->fields()[1].offset(), -2.0f);
    ASSERT_TRUE(cl.PutObject(7, mobj.get()).is_ok());
    TtRecord rec{};
    ASSERT_TRUE(cl.GetObject(7, &rec).is_ok());
    EXPECT_EQ(rec.a, 44);
    EXPECT_EQ(rec.b, -2.0f);

    ASSERT_TRUE(cl.Close().is_ok());
  });
}

}  // namespace
}  // namespace motor::typed
