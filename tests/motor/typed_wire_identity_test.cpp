// The load-bearing property of the typed layer: for every wireable shape,
// the compile-time codec, the runtime plan cache, and the FieldDesc-
// walking ablation produce BYTE-IDENTICAL streams. Identity is what lets
// a typed sender talk to a reflective receiver (and vice versa), so this
// suite diffs the bytes over seeded values for a family of aggregate
// shapes — packed, padded, nested, array-membered — plus scalar arrays
// and the empty-span edge (where the managed serializer never discovers
// the element class, shrinking the type table).
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "common/prng.hpp"
#include "motor/motor_serializer.hpp"
#include "motor/typed/typed.hpp"
#include "vm/handles.hpp"
#include "vm/vm.hpp"

namespace motor::typed {
namespace {

struct WiPacked {
  double x;
  double y;
  std::int32_t a;
  std::int32_t b;
};

struct WiGappy {
  std::uint8_t a;
  std::int64_t b;
  std::uint8_t c;
  std::int32_t d;
};

struct WiInner {
  float u;
  float v;
};

struct WiNested {
  std::int32_t id;
  WiInner in;
  double w;
};

struct WiArrayed {
  double pos[3];
  std::uint16_t tag;
};

}  // namespace
}  // namespace motor::typed

MOTOR_TYPED_STRUCT_NAMED(motor::typed::WiPacked, "WiPacked", x, y, a, b);
MOTOR_TYPED_STRUCT_NAMED(motor::typed::WiGappy, "WiGappy", a, b, c, d);
MOTOR_TYPED_STRUCT_NAMED(motor::typed::WiInner, "WiInner", u, v);
MOTOR_TYPED_STRUCT_NAMED(motor::typed::WiNested, "WiNested", id, in, w);
MOTOR_TYPED_STRUCT_NAMED(motor::typed::WiArrayed, "WiArrayed", pos, tag);

namespace motor::typed {
namespace {

class TypedWireIdentityTest : public ::testing::Test {
 protected:
  TypedWireIdentityTest()
      : vm_([] {
          vm::VmConfig c;
          c.profile = vm::RuntimeProfile::uncosted();
          c.heap.young_bytes = 16 << 20;
          return c;
        }()),
        thread_(vm_) {}

  /// Scribble seeded bytes over exactly the wire-visible storage of a
  /// native value (runs only — padding stays zeroed/indeterminate and
  /// must not matter).
  template <motor_described T>
  T random_value(Prng& rng) {
    T value{};
    auto* bytes = reinterpret_cast<std::byte*>(&value);
    for (const mp::WireOp& op : TypedPlan<T>::ops) {
      for (std::uint32_t i = 0; i < op.bytes; ++i) {
        bytes[op.offset + i] = static_cast<std::byte>(rng.next_below(256));
      }
    }
    return value;
  }

  /// The managed twin of `value`: leaf offsets are verified equal at
  /// registration, so instance data can be filled run-by-run.
  template <motor_described T>
  vm::Obj twin_object(const T& value) {
    const vm::MethodTable* mt = register_managed_twin<T>(vm_.types());
    vm::Obj obj = vm_.heap().alloc_object(mt);
    const auto* src = reinterpret_cast<const std::byte*>(&value);
    for (const mp::WireOp& op : TypedPlan<T>::ops) {
      std::memcpy(vm::obj_data(obj) + op.offset, src + op.offset, op.bytes);
    }
    return obj;
  }

  /// Serialize a managed root with the plan cache on and off; both must
  /// agree with each other, and the caller diffs them against the typed
  /// bytes.
  void managed_streams(vm::Obj root, ByteBuffer& plan, ByteBuffer& reflect) {
    mp::MotorSerializer with_plans(vm_, mp::VisitedMode::kHashed, true);
    mp::MotorSerializer ablation(vm_, mp::VisitedMode::kHashed, false);
    ASSERT_TRUE(with_plans.serialize(root, plan).is_ok());
    ASSERT_TRUE(ablation.serialize(root, reflect).is_ok());
  }

  static void expect_same_bytes(const ByteBuffer& a, const ByteBuffer& b,
                                const char* what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0) << what;
  }

  template <motor_described T>
  void check_value_identity(Prng& rng) {
    const T value = random_value<T>(rng);
    vm::GcRoot obj(thread_, twin_object(value));

    ByteBuffer typed_bytes;
    serialize_value(value, typed_bytes);

    ByteBuffer plan_bytes, reflect_bytes;
    managed_streams(obj.get(), plan_bytes, reflect_bytes);
    expect_same_bytes(typed_bytes, plan_bytes, "typed vs plan-cache");
    expect_same_bytes(typed_bytes, reflect_bytes, "typed vs reflective");

    // Cross-decode both ways: the reflective stream through the typed
    // decoder, and the typed stream through the reflective deserializer.
    plan_bytes.seek(0);
    T back{};
    ASSERT_TRUE(deserialize_value(plan_bytes, &back).is_ok());
    const auto* a = reinterpret_cast<const std::byte*>(&value);
    const auto* b = reinterpret_cast<const std::byte*>(&back);
    for (const mp::WireOp& op : TypedPlan<T>::ops) {
      EXPECT_EQ(std::memcmp(a + op.offset, b + op.offset, op.bytes), 0);
    }

    typed_bytes.seek(0);
    mp::MotorSerializer ser(vm_);
    vm::Obj copy = nullptr;
    ASSERT_TRUE(ser.deserialize(typed_bytes, thread_, &copy).is_ok());
    ASSERT_NE(copy, nullptr);
    for (const mp::WireOp& op : TypedPlan<T>::ops) {
      EXPECT_EQ(std::memcmp(vm::obj_data(copy) + op.offset, a + op.offset,
                            op.bytes),
                0);
    }
  }

  template <motor_described T>
  void check_span_identity(Prng& rng, std::size_t n) {
    std::vector<T> values;
    values.reserve(n);
    for (std::size_t i = 0; i < n; ++i) values.push_back(random_value<T>(rng));

    const vm::MethodTable* mt = register_managed_twin<T>(vm_.types());
    vm::GcRoot arr(thread_,
                   vm_.heap().alloc_array(vm_.types().ref_array(mt),
                                          static_cast<std::int64_t>(n)));
    {
      // Elements allocated after the array; roots keep everything alive.
      for (std::size_t i = 0; i < n; ++i) {
        vm::set_ref_element(arr.get(), static_cast<std::int64_t>(i),
                            twin_object(values[i]));
      }
    }

    ByteBuffer typed_bytes;
    serialize_span(std::span<const T>(values), typed_bytes);

    ByteBuffer plan_bytes, reflect_bytes;
    managed_streams(arr.get(), plan_bytes, reflect_bytes);
    expect_same_bytes(typed_bytes, plan_bytes, "span typed vs plan-cache");
    expect_same_bytes(typed_bytes, reflect_bytes, "span typed vs reflective");

    plan_bytes.seek(0);
    std::vector<T> back;
    ASSERT_TRUE(deserialize_span(plan_bytes, back).is_ok());
    ASSERT_EQ(back.size(), n);
  }

  template <motor_scalar T>
  void check_scalar_identity(Prng& rng, std::size_t n) {
    std::vector<T> values(n);
    auto* raw = reinterpret_cast<std::byte*>(values.data());
    for (std::size_t i = 0; i < n * sizeof(T); ++i) {
      raw[i] = static_cast<std::byte>(rng.next_below(256));
    }

    const vm::MethodTable* amt = vm_.types().primitive_array(kind_of<T>());
    vm::GcRoot arr(thread_,
                   vm_.heap().alloc_array(amt, static_cast<std::int64_t>(n)));
    if (n > 0) {
      std::memcpy(vm::array_data(arr.get()), values.data(), n * sizeof(T));
    }

    ByteBuffer typed_bytes;
    serialize_span(std::span<const T>(values), typed_bytes);

    ByteBuffer plan_bytes, reflect_bytes;
    managed_streams(arr.get(), plan_bytes, reflect_bytes);
    expect_same_bytes(typed_bytes, plan_bytes, "scalar typed vs plan-cache");
    expect_same_bytes(typed_bytes, reflect_bytes,
                      "scalar typed vs reflective");

    plan_bytes.seek(0);
    std::vector<T> back;
    ASSERT_TRUE(deserialize_span(plan_bytes, back).is_ok());
    EXPECT_EQ(std::memcmp(back.data(), values.data(), n * sizeof(T)), 0);
  }

  vm::Vm vm_;
  vm::ManagedThread thread_;
};

TEST_F(TypedWireIdentityTest, SingleValuesAllShapes) {
  Prng rng(0xC0FFEE01);
  for (int iter = 0; iter < 8; ++iter) {
    check_value_identity<WiPacked>(rng);
    check_value_identity<WiGappy>(rng);
    check_value_identity<WiNested>(rng);
    check_value_identity<WiArrayed>(rng);
  }
}

TEST_F(TypedWireIdentityTest, ObjectSpansSeededLengths) {
  Prng rng(0xC0FFEE02);
  for (int iter = 0; iter < 6; ++iter) {
    const auto n = static_cast<std::size_t>(rng.next_below(24));
    check_span_identity<WiPacked>(rng, n);
    check_span_identity<WiGappy>(rng, n);
    check_span_identity<WiNested>(rng, n);
  }
}

TEST_F(TypedWireIdentityTest, EmptySpansShrinkTheTypeTable) {
  // n == 0: the managed serializer never reaches an element record, so
  // the element class is never discovered and the type table carries only
  // "T[]". The typed encoder reproduces that, not a fixed two-entry table.
  Prng rng(0xC0FFEE03);
  check_span_identity<WiPacked>(rng, 0);
  check_span_identity<WiArrayed>(rng, 0);
  check_scalar_identity<double>(rng, 0);
}

TEST_F(TypedWireIdentityTest, ScalarSpansSeededLengthsAndKinds) {
  Prng rng(0xC0FFEE04);
  for (int iter = 0; iter < 6; ++iter) {
    check_scalar_identity<float>(rng, rng.next_below(512));
    check_scalar_identity<double>(rng, rng.next_below(256));
    check_scalar_identity<std::int32_t>(rng, rng.next_below(512));
    check_scalar_identity<std::uint8_t>(rng, rng.next_below(2048));
    check_scalar_identity<std::int64_t>(rng, rng.next_below(128));
  }
}

TEST_F(TypedWireIdentityTest, GatherPathMatchesFlatAgainstManaged) {
  // The gathered encoding's concatenation must ALSO equal the managed
  // stream (it is the path typed sends put on the wire).
  Prng rng(0xC0FFEE05);
  std::vector<float> values(1024);
  for (auto& v : values) v = static_cast<float>(rng.next_double());

  const vm::MethodTable* amt =
      vm_.types().primitive_array(vm::ElementKind::kFloat);
  vm::GcRoot arr(thread_, vm_.heap().alloc_array(
                              amt, static_cast<std::int64_t>(values.size())));
  std::memcpy(vm::array_data(arr.get()), values.data(),
              values.size() * sizeof(float));

  ByteBuffer plan_bytes, reflect_bytes;
  managed_streams(arr.get(), plan_bytes, reflect_bytes);

  ByteBuffer meta;
  SpanVec sv;
  serialize_span_gather(std::span<const float>(values), meta, sv);
  ASSERT_EQ(sv.total_bytes(), plan_bytes.size());
  std::vector<std::byte> gathered;
  for (ByteSpan part : sv.parts()) {
    gathered.insert(gathered.end(), part.begin(), part.end());
  }
  EXPECT_EQ(std::memcmp(gathered.data(), plan_bytes.data(), gathered.size()),
            0);
}

TEST_F(TypedWireIdentityTest, TwinRegistrationIsIdempotentAndVerified) {
  const vm::MethodTable* a = register_managed_twin<WiNested>(vm_.types());
  const vm::MethodTable* b = register_managed_twin<WiNested>(vm_.types());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->wire_bytes(), TypedPlan<WiNested>::wire_bytes);
}

}  // namespace
}  // namespace motor::typed
