// Compiled per-type wire plans (wire_plan.hpp): run coalescing over the
// packed FieldDesc layout, the single-run fast-path classification, the
// cache's build-once behaviour, and the SerializerStats counters that
// prove the plan amortizes across objects.
#include "motor/wire_plan.hpp"

#include <gtest/gtest.h>

#include "common/buffer.hpp"
#include "motor/motor_serializer.hpp"
#include "vm/handles.hpp"
#include "vm/vm.hpp"

namespace motor::mp {
namespace {

vm::VmConfig test_config() {
  vm::VmConfig c;
  c.profile = vm::RuntimeProfile::uncosted();
  c.heap.young_bytes = 8 << 20;
  return c;
}

class WirePlanTest : public ::testing::Test {
 protected:
  WirePlanTest() : vm_(test_config()), thread_(vm_) {}

  vm::Vm vm_;
  vm::ManagedThread thread_;
};

TEST_F(WirePlanTest, PackedAllPrimitiveTypeCompilesToSingleRun) {
  // x,y,z doubles then two i32s: offsets 0,8,16,24,28 — fully packed.
  const vm::MethodTable* mt = vm_.types()
                                  .define_class("PackedCell")
                                  .field("x", vm::ElementKind::kDouble)
                                  .field("y", vm::ElementKind::kDouble)
                                  .field("z", vm::ElementKind::kDouble)
                                  .field("id", vm::ElementKind::kInt32)
                                  .field("flags", vm::ElementKind::kInt32)
                                  .build();
  EXPECT_TRUE(mt->is_all_primitive());
  EXPECT_TRUE(mt->has_packed_layout());
  EXPECT_EQ(mt->wire_bytes(), 32u);

  WirePlan plan = WirePlan::compile(*mt);
  ASSERT_EQ(plan.ops.size(), 1u);
  EXPECT_EQ(plan.ops[0].kind, WireOp::Kind::kRun);
  EXPECT_EQ(plan.ops[0].bytes, 32u);
  EXPECT_EQ(plan.ops[0].fields, 5u);
  EXPECT_TRUE(plan.single_run);
  EXPECT_EQ(plan.run_offset, 0u);
  EXPECT_EQ(plan.wire_bytes, 32u);
  EXPECT_TRUE(plan.refs.empty());
}

TEST_F(WirePlanTest, AlignmentGapsSplitRuns) {
  // u8@0, i64@8 (gap 1..7), u8@16 (contiguous after b), i32@20
  // (gap 17..19): three runs, with b+c coalescing into one 9-byte copy.
  const vm::MethodTable* mt = vm_.types()
                                  .define_class("GappyCell")
                                  .field("a", vm::ElementKind::kUInt8)
                                  .field("b", vm::ElementKind::kInt64)
                                  .field("c", vm::ElementKind::kUInt8)
                                  .field("d", vm::ElementKind::kInt32)
                                  .build();
  EXPECT_TRUE(mt->is_all_primitive());
  EXPECT_FALSE(mt->has_packed_layout());
  EXPECT_EQ(mt->wire_bytes(), 14u);

  WirePlan plan = WirePlan::compile(*mt);
  ASSERT_EQ(plan.ops.size(), 3u);
  for (const WireOp& op : plan.ops) {
    EXPECT_EQ(op.kind, WireOp::Kind::kRun);
  }
  EXPECT_EQ(plan.ops[0].fields, 1u);  // a
  EXPECT_EQ(plan.ops[0].bytes, 1u);
  EXPECT_EQ(plan.ops[1].fields, 2u);  // b+c coalesce across no gap
  EXPECT_EQ(plan.ops[1].bytes, 9u);
  EXPECT_EQ(plan.ops[2].fields, 1u);  // d, behind the alignment gap
  EXPECT_EQ(plan.ops[2].bytes, 4u);
  EXPECT_FALSE(plan.single_run);
}

TEST_F(WirePlanTest, ReferencesSplitRunsAndLandInRefList) {
  // i32,i32 (coalesce) | ref | f64,i32? — f64@16, i32@24 contiguous.
  const vm::MethodTable* mt =
      vm_.types()
          .define_class("MixedCell")
          .transportable()
          .field("a", vm::ElementKind::kInt32)
          .field("b", vm::ElementKind::kInt32)
          .ref_field("r", vm_.types().object_type(), /*transportable=*/true)
          .field("c", vm::ElementKind::kDouble)
          .field("d", vm::ElementKind::kInt32)
          .ref_field("s", vm_.types().object_type(), /*transportable=*/false)
          .build();
  EXPECT_FALSE(mt->is_all_primitive());
  EXPECT_FALSE(mt->has_packed_layout());

  WirePlan plan = WirePlan::compile(*mt);
  // run{a,b} ref{r} run{c,d} ref{s}
  ASSERT_EQ(plan.ops.size(), 4u);
  EXPECT_EQ(plan.ops[0].kind, WireOp::Kind::kRun);
  EXPECT_EQ(plan.ops[0].fields, 2u);
  EXPECT_EQ(plan.ops[0].bytes, 8u);
  EXPECT_EQ(plan.ops[1].kind, WireOp::Kind::kRef);
  EXPECT_TRUE(plan.ops[1].transportable);
  EXPECT_EQ(plan.ops[2].kind, WireOp::Kind::kRun);
  EXPECT_EQ(plan.ops[2].fields, 2u);
  EXPECT_EQ(plan.ops[2].bytes, 12u);
  EXPECT_EQ(plan.ops[3].kind, WireOp::Kind::kRef);
  EXPECT_FALSE(plan.ops[3].transportable);
  ASSERT_EQ(plan.refs.size(), 2u);
  EXPECT_TRUE(plan.refs[0].transportable);
  EXPECT_FALSE(plan.refs[1].transportable);
  // Wire size: 4+4 + 4(ref) + 8+4 + 4(ref) = 28, matching the load-time
  // MethodTable cache.
  EXPECT_EQ(plan.wire_bytes, 28u);
  EXPECT_EQ(plan.wire_bytes, mt->wire_bytes());
  EXPECT_FALSE(plan.single_run);
}

TEST_F(WirePlanTest, CacheCompilesOnceAndReturnsStableReference) {
  const vm::MethodTable* mt = vm_.types()
                                  .define_class("CachedCell")
                                  .field("a", vm::ElementKind::kInt32)
                                  .build();
  WirePlanCache cache;
  bool built = false;
  const WirePlan& first = cache.plan_for(mt, &built);
  EXPECT_TRUE(built);
  const WirePlan& second = cache.plan_for(mt, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(WirePlanTest, StatsShowPlansAmortizeAcrossObjects) {
  const vm::MethodTable* cell = vm_.types()
                                    .define_class("StatCell")
                                    .field("x", vm::ElementKind::kDouble)
                                    .field("y", vm::ElementKind::kDouble)
                                    .field("id", vm::ElementKind::kInt32)
                                    .build();
  const vm::MethodTable* arr_mt = vm_.types().ref_array(cell);
  constexpr int kCount = 100;
  vm::GcRoot arr(thread_, vm_.heap().alloc_array(arr_mt, kCount));
  for (int i = 0; i < kCount; ++i) {
    vm::Obj c = vm_.heap().alloc_object(cell);
    vm::set_field<double>(c, 0, i * 1.5);
    vm::set_field<double>(c, 8, i * 2.5);
    vm::set_field<std::int32_t>(c, 16, i);
    vm::set_ref_element(arr.get(), i, c);
  }

  MotorSerializer ser(vm_);
  ASSERT_TRUE(ser.plan_cache_enabled());
  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(arr.get(), buf).is_ok());
  // One distinct class type -> one build; every record a hit; coalesced
  // runs cover all three fields each.
  EXPECT_EQ(ser.stats().plan_builds, 1u);
  EXPECT_EQ(ser.stats().plan_hits, static_cast<std::uint64_t>(kCount));
  EXPECT_EQ(ser.stats().runs_copied, static_cast<std::uint64_t>(kCount));
  EXPECT_EQ(ser.stats().fields_copied, static_cast<std::uint64_t>(3 * kCount));

  // A second send of the same graph reuses the plan: hits scale with
  // objects, builds stay bounded by distinct types.
  ByteBuffer buf2;
  ASSERT_TRUE(ser.serialize(arr.get(), buf2).is_ok());
  EXPECT_EQ(ser.stats().plan_builds, 1u);
  EXPECT_EQ(ser.stats().plan_hits, static_cast<std::uint64_t>(2 * kCount));

  // Deserialize executes the same plan program.
  buf.seek(0);
  vm::Obj copy = nullptr;
  ASSERT_TRUE(ser.deserialize(buf, thread_, &copy).is_ok());
  EXPECT_EQ(ser.stats().plan_hits, static_cast<std::uint64_t>(3 * kCount));
  EXPECT_EQ(ser.stats().plan_builds, 1u);
}

TEST_F(WirePlanTest, PlanSerializeReservesExactlyOnce) {
  // The plan path precomputes the stream size and reserves once; the
  // ablation path regrows the buffer as it appends.
  const vm::MethodTable* cell = vm_.types()
                                    .define_class("ReserveCell")
                                    .field("x", vm::ElementKind::kDouble)
                                    .field("y", vm::ElementKind::kDouble)
                                    .field("z", vm::ElementKind::kDouble)
                                    .field("w", vm::ElementKind::kDouble)
                                    .build();
  const vm::MethodTable* arr_mt = vm_.types().ref_array(cell);
  constexpr int kCount = 1000;
  vm::GcRoot arr(thread_, vm_.heap().alloc_array(arr_mt, kCount));
  for (int i = 0; i < kCount; ++i) {
    vm::set_ref_element(arr.get(), i, vm_.heap().alloc_object(cell));
  }

  MotorSerializer planned(vm_);
  ByteBuffer fast;
  ASSERT_TRUE(planned.serialize(arr.get(), fast).is_ok());
  // At most one growth: the single up-front reserve.
  EXPECT_LE(fast.growth_count(), 1u);
  EXPECT_EQ(fast.capacity(), fast.size());  // the estimate was exact

  MotorSerializer ablated(vm_, VisitedMode::kHashed, /*plan_cache=*/false);
  ByteBuffer slow;
  ASSERT_TRUE(ablated.serialize(arr.get(), slow).is_ok());
  EXPECT_GT(slow.growth_count(), 1u);  // doubling regrowth, repeatedly
  EXPECT_EQ(ablated.stats().plan_builds, 0u);
  EXPECT_EQ(ablated.stats().plan_hits, 0u);

  // Identical wire bytes either way — the plan cache must not change the
  // format.
  ASSERT_EQ(fast.size(), slow.size());
  EXPECT_EQ(0, std::memcmp(fast.data(), slow.data(), fast.size()));
}

TEST_F(WirePlanTest, WindowGatherStillReferencesLargeRunsInPlace) {
  // Plans must not disturb the PR 1 zero-copy gather path: large
  // primitive payloads keep riding as in-place span references.
  const vm::MethodTable* ints =
      vm_.types().primitive_array(vm::ElementKind::kInt32);
  vm::GcRoot big(thread_, vm_.heap().alloc_array(ints, 4096));
  for (int i = 0; i < 4096; ++i) {
    vm::set_element<std::int32_t>(big.get(), i, i);
  }
  MotorSerializer ser(vm_);
  GatherRep rep;
  ASSERT_TRUE(ser.serialize_gather(big.get(), rep).is_ok());
  ASSERT_EQ(rep.backing.size(), 1u);
  EXPECT_EQ(rep.backing[0], big.get());
  bool aliased = false;
  for (ByteSpan part : rep.spans.parts()) {
    if (part.data() == vm::array_data(big.get())) aliased = true;
  }
  EXPECT_TRUE(aliased);
  // The metadata buffer was reserved from the plan-derived size, which
  // EXCLUDES the in-place payload: no regrowth, and meta stays small.
  EXPECT_LE(rep.meta.growth_count(), 1u);
  EXPECT_LT(rep.meta.size(), 256u);
}

}  // namespace
}  // namespace motor::mp
