// Seeded property suite for the collective algorithm registry: every
// registered algorithm must produce the same result as the deterministic
// `linear` reference, over random message sizes and roots, non-power-of-
// two worlds (including 1, 3, 7, 13), and every modelled topology. A
// final fault-injected pass proves that a collective over a dead link
// fails fast with kCommError on every rank instead of hanging.
#include "mpi/collectives.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/prng.hpp"
#include "mpi/world.hpp"
#include "transport/fabric.hpp"
#include "transport/topology.hpp"

namespace motor::mpi {
namespace {

using transport::TopologyKind;
using transport::TopologySpec;

// Non-power-of-two heavy: 1 and 13 hit the degenerate and deep-tree
// paths, 3 and 7 the fold-in pre/post phases, 8 the clean pof2 fast path.
constexpr int kWorldSizes[] = {1, 3, 7, 8, 13};

constexpr TopologyKind kTopologies[] = {
    TopologyKind::kFullMesh, TopologyKind::kMesh2D, TopologyKind::kTorus2D,
    TopologyKind::kFatTree};

// Deterministic per-rank contribution: any rank can reconstruct any other
// rank's data, so references are computed locally without extra traffic.
std::int64_t contrib(int rank, std::size_t j, std::uint64_t salt) {
  return static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(rank) + 1) * 1315423911ull +
      j * 2654435761ull + salt * 97ull) %
         100003 -
         50000;
}

WorldConfig topo_world_config(TopologyKind kind) {
  WorldConfig cfg;
  cfg.topology.kind = kind;
  // Small grouping so even 3-rank worlds span multiple nodes and the
  // two-level leader phases actually run.
  cfg.topology.ranks_per_node = 3;
  cfg.topology.fat_tree_radix = 3;
  return cfg;
}

struct Draw {
  std::size_t count;
  int root;
};

Draw next_draw(Prng& rng, int world) {
  Draw d;
  d.count = 1 + rng.next_below(600);
  d.root = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(world)));
  return d;
}

TEST(CollectivesProperty, BcastAllAlgosMatchOnAllTopologies) {
  for (const TopologyKind kind : kTopologies) {
    for (const int n : kWorldSizes) {
      World world(n, topo_world_config(kind));
      world.run([n, kind](RankCtx& ctx) {
        Comm& comm = ctx.comm_world();
        Prng rng(0xB0A57ull ^ (static_cast<std::uint64_t>(kind) << 8) ^
                 static_cast<std::uint64_t>(n));
        for (int iter = 0; iter < 3; ++iter) {
          const Draw d = next_draw(rng, n);
          std::vector<std::int64_t> expected(d.count);
          for (std::size_t j = 0; j < d.count; ++j) {
            expected[j] = contrib(d.root, j, static_cast<std::uint64_t>(iter));
          }
          for (const CollAlgo algo : registered_algos(CollOp::kBcast)) {
            std::vector<std::int64_t> buf(d.count, -1);
            if (comm.rank() == d.root) buf = expected;
            ASSERT_EQ(bcast(comm, buf.data(),
                            d.count * sizeof(std::int64_t), d.root, {}, algo),
                      ErrorCode::kSuccess)
                << coll_algo_name(algo);
            EXPECT_EQ(buf, expected)
                << coll_algo_name(algo) << " n=" << n << " iter=" << iter;
          }
        }
      });
    }
  }
}

TEST(CollectivesProperty, ReduceAllAlgosMatchLinearReference) {
  for (const TopologyKind kind : kTopologies) {
    for (const int n : kWorldSizes) {
      World world(n, topo_world_config(kind));
      world.run([n, kind](RankCtx& ctx) {
        Comm& comm = ctx.comm_world();
        Prng rng(0x2ED0CEull ^ (static_cast<std::uint64_t>(kind) << 8) ^
                 static_cast<std::uint64_t>(n));
        for (int iter = 0; iter < 3; ++iter) {
          const Draw d = next_draw(rng, n);
          const auto salt = static_cast<std::uint64_t>(iter);
          std::vector<std::int64_t> mine(d.count);
          for (std::size_t j = 0; j < d.count; ++j) {
            mine[j] = contrib(comm.rank(), j, salt);
          }
          std::vector<std::int64_t> ref(d.count);
          ASSERT_EQ(reduce(comm, mine.data(), ref.data(), d.count,
                           Datatype::kInt64, ReduceOp::kSum, d.root, {},
                           CollAlgo::kLinear),
                    ErrorCode::kSuccess);
          if (comm.rank() == d.root) {
            for (std::size_t j = 0; j < d.count; ++j) {
              std::int64_t want = 0;
              for (int r = 0; r < n; ++r) want += contrib(r, j, salt);
              ASSERT_EQ(ref[j], want) << "linear reference is wrong";
            }
          }
          for (const CollAlgo algo : registered_algos(CollOp::kReduce)) {
            if (algo == CollAlgo::kLinear) continue;
            std::vector<std::int64_t> out(d.count, -7);
            ASSERT_EQ(reduce(comm, mine.data(), out.data(), d.count,
                             Datatype::kInt64, ReduceOp::kSum, d.root, {},
                             algo),
                      ErrorCode::kSuccess)
                << coll_algo_name(algo);
            if (comm.rank() == d.root) {
              EXPECT_EQ(out, ref)
                  << coll_algo_name(algo) << " n=" << n << " iter=" << iter;
            }
          }
        }
      });
    }
  }
}

TEST(CollectivesProperty, AllreduceAllAlgosMatchLinearReference) {
  for (const TopologyKind kind : kTopologies) {
    for (const int n : kWorldSizes) {
      World world(n, topo_world_config(kind));
      world.run([n, kind](RankCtx& ctx) {
        Comm& comm = ctx.comm_world();
        Prng rng(0xA11ull ^ (static_cast<std::uint64_t>(kind) << 8) ^
                 static_cast<std::uint64_t>(n));
        for (int iter = 0; iter < 3; ++iter) {
          const Draw d = next_draw(rng, n);
          const auto salt = static_cast<std::uint64_t>(iter);
          std::vector<std::int64_t> mine(d.count);
          for (std::size_t j = 0; j < d.count; ++j) {
            mine[j] = contrib(comm.rank(), j, salt);
          }
          std::vector<std::int64_t> ref(d.count);
          ASSERT_EQ(allreduce(comm, mine.data(), ref.data(), d.count,
                              Datatype::kInt64, ReduceOp::kSum, {},
                              CollAlgo::kLinear),
                    ErrorCode::kSuccess);
          for (const CollAlgo algo : registered_algos(CollOp::kAllreduce)) {
            if (algo == CollAlgo::kLinear) continue;
            std::vector<std::int64_t> out(d.count, -7);
            ASSERT_EQ(allreduce(comm, mine.data(), out.data(), d.count,
                                Datatype::kInt64, ReduceOp::kSum, {}, algo),
                      ErrorCode::kSuccess)
                << coll_algo_name(algo);
            EXPECT_EQ(out, ref)
                << coll_algo_name(algo) << " n=" << n << " iter=" << iter
                << " count=" << d.count;
          }
          // Min is commutative but not invertible — a different failure
          // surface than sum (lost contributions can hide under sums).
          std::vector<std::int64_t> ref_min(d.count);
          ASSERT_EQ(allreduce(comm, mine.data(), ref_min.data(), d.count,
                              Datatype::kInt64, ReduceOp::kMin, {},
                              CollAlgo::kLinear),
                    ErrorCode::kSuccess);
          for (const CollAlgo algo : registered_algos(CollOp::kAllreduce)) {
            if (algo == CollAlgo::kLinear) continue;
            std::vector<std::int64_t> out(d.count, -7);
            ASSERT_EQ(allreduce(comm, mine.data(), out.data(), d.count,
                                Datatype::kInt64, ReduceOp::kMin, {}, algo),
                      ErrorCode::kSuccess);
            EXPECT_EQ(out, ref_min) << coll_algo_name(algo) << " (min)";
          }
        }
      });
    }
  }
}

TEST(CollectivesProperty, AllreduceDoubleStaysWithinTolerance) {
  // Tree/butterfly orders reassociate floating-point sums; results must
  // agree with the rank-order reference to rounding, not bit-exactly.
  for (const int n : kWorldSizes) {
    World world(n, topo_world_config(TopologyKind::kMesh2D));
    world.run([n](RankCtx& ctx) {
      Comm& comm = ctx.comm_world();
      constexpr std::size_t kCount = 257;
      std::vector<double> mine(kCount);
      for (std::size_t j = 0; j < kCount; ++j) {
        mine[j] =
            std::sin(static_cast<double>(comm.rank() * 131 + 7) +
                     static_cast<double>(j)) *
            1e3;
      }
      std::vector<double> ref(kCount);
      ASSERT_EQ(allreduce(comm, mine.data(), ref.data(), kCount,
                          Datatype::kDouble, ReduceOp::kSum, {},
                          CollAlgo::kLinear),
                ErrorCode::kSuccess);
      for (const CollAlgo algo : registered_algos(CollOp::kAllreduce)) {
        if (algo == CollAlgo::kLinear) continue;
        std::vector<double> out(kCount);
        ASSERT_EQ(allreduce(comm, mine.data(), out.data(), kCount,
                            Datatype::kDouble, ReduceOp::kSum, {}, algo),
                  ErrorCode::kSuccess);
        for (std::size_t j = 0; j < kCount; ++j) {
          EXPECT_NEAR(out[j], ref[j], 1e-6 * (1.0 + std::abs(ref[j])))
              << coll_algo_name(algo) << " j=" << j;
        }
      }
    });
  }
}

TEST(CollectivesProperty, AllgatherAllAlgosMatchOnAllTopologies) {
  for (const TopologyKind kind : kTopologies) {
    for (const int n : kWorldSizes) {
      World world(n, topo_world_config(kind));
      world.run([n, kind](RankCtx& ctx) {
        Comm& comm = ctx.comm_world();
        Prng rng(0xA11647ull ^ (static_cast<std::uint64_t>(kind) << 8) ^
                 static_cast<std::uint64_t>(n));
        for (int iter = 0; iter < 3; ++iter) {
          const std::size_t count = 1 + rng.next_below(300);
          const auto salt = static_cast<std::uint64_t>(iter);
          std::vector<std::int64_t> mine(count);
          for (std::size_t j = 0; j < count; ++j) {
            mine[j] = contrib(comm.rank(), j, salt);
          }
          std::vector<std::int64_t> expected(
              count * static_cast<std::size_t>(n));
          for (int r = 0; r < n; ++r) {
            for (std::size_t j = 0; j < count; ++j) {
              expected[static_cast<std::size_t>(r) * count + j] =
                  contrib(r, j, salt);
            }
          }
          for (const CollAlgo algo : registered_algos(CollOp::kAllgather)) {
            std::vector<std::int64_t> out(expected.size(), -3);
            ASSERT_EQ(allgather(comm, mine.data(),
                                count * sizeof(std::int64_t), out.data(), {},
                                algo),
                      ErrorCode::kSuccess)
                << coll_algo_name(algo);
            EXPECT_EQ(out, expected)
                << coll_algo_name(algo) << " n=" << n << " iter=" << iter;
          }
        }
      });
    }
  }
}

TEST(CollectivesProperty, ReduceScatterAllAlgosMatchOnAllTopologies) {
  for (const TopologyKind kind : kTopologies) {
    for (const int n : kWorldSizes) {
      World world(n, topo_world_config(kind));
      world.run([n, kind](RankCtx& ctx) {
        Comm& comm = ctx.comm_world();
        Prng rng(0x2ED5Cull ^ (static_cast<std::uint64_t>(kind) << 8) ^
                 static_cast<std::uint64_t>(n));
        for (int iter = 0; iter < 3; ++iter) {
          const std::size_t count = 1 + rng.next_below(300);
          const auto salt = static_cast<std::uint64_t>(iter);
          const std::size_t total = count * static_cast<std::size_t>(n);
          std::vector<std::int64_t> mine(total);
          for (std::size_t j = 0; j < total; ++j) {
            mine[j] = contrib(comm.rank(), j, salt);
          }
          std::vector<std::int64_t> expected(count);
          const std::size_t base =
              static_cast<std::size_t>(comm.rank()) * count;
          for (std::size_t j = 0; j < count; ++j) {
            std::int64_t want = 0;
            for (int r = 0; r < n; ++r) want += contrib(r, base + j, salt);
            expected[j] = want;
          }
          for (const CollAlgo algo :
               registered_algos(CollOp::kReduceScatter)) {
            std::vector<std::int64_t> out(count, -9);
            ASSERT_EQ(reduce_scatter_block(comm, mine.data(), out.data(),
                                           count, Datatype::kInt64,
                                           ReduceOp::kSum, {}, algo),
                      ErrorCode::kSuccess)
                << coll_algo_name(algo);
            EXPECT_EQ(out, expected)
                << coll_algo_name(algo) << " n=" << n << " iter=" << iter;
          }
        }
      });
    }
  }
}

TEST(CollectivesProperty, DeviceTuningPinsTheAlgorithm) {
  // The MPDirectConfig-style override: pinning an algorithm per device
  // must route every call through it (and still be correct).
  WorldConfig cfg = topo_world_config(TopologyKind::kTorus2D);
  cfg.device.collectives.allreduce = CollAlgo::kReduceScatterAllgather;
  cfg.device.collectives.allgather = CollAlgo::kBruck;
  World world(7, cfg);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    constexpr std::size_t kCount = 64;
    std::vector<std::int64_t> mine(kCount);
    for (std::size_t j = 0; j < kCount; ++j) {
      mine[j] = contrib(comm.rank(), j, 5);
    }
    std::vector<std::int64_t> out(kCount);
    ASSERT_EQ(allreduce(comm, mine.data(), out.data(), kCount,
                        Datatype::kInt64, ReduceOp::kSum),
              ErrorCode::kSuccess);
    for (std::size_t j = 0; j < kCount; ++j) {
      std::int64_t want = 0;
      for (int r = 0; r < 7; ++r) want += contrib(r, j, 5);
      EXPECT_EQ(out[j], want);
    }
  });
}

TEST(CollectivesProperty, SelectionAlwaysReturnsARegisteredAlgo) {
  for (const TopologyKind kind : kTopologies) {
    transport::Topology topo({kind}, 64);
    for (const CollOp op :
         {CollOp::kBcast, CollOp::kReduce, CollOp::kAllreduce,
          CollOp::kAllgather, CollOp::kReduceScatter}) {
      for (const int n : {1, 2, 5, 16, 64, 256}) {
        for (const std::size_t bytes : {std::size_t{0}, std::size_t{64},
                                        std::size_t{1} << 14,
                                        std::size_t{1} << 20}) {
          const CollAlgo a = select_algo(op, n, bytes, &topo);
          const auto algos = registered_algos(op);
          EXPECT_NE(std::find(algos.begin(), algos.end(), a), algos.end())
              << "op=" << static_cast<int>(op) << " n=" << n
              << " bytes=" << bytes;
          EXPECT_NE(a, CollAlgo::kAuto);
        }
      }
    }
    // Null topology (flat) must work too.
    EXPECT_NE(select_algo(CollOp::kBcast, 64, 1 << 20, nullptr),
              CollAlgo::kAuto);
  }
}

// ---------------------------------------------------------------------------
// Fault pass: collectives over a dead wire must fail fast with kCommError
// on every rank — never hang. Both directions of the 0<->1 link are black
// holes, so each rank's Go-Back-N window exhausts its retries, the flow is
// declared dead, and the in-flight sendrecv on BOTH sides errors out.

TEST(CollectivesProperty, DeadLinkFailsFastWithCommError) {
  WorldConfig cfg;
  cfg.device.reliability.enabled = true;
  cfg.device.reliability.retry_timeout_polls = 16;
  cfg.device.reliability.retry_timeout_cap_polls = 64;
  cfg.device.reliability.max_retries = 4;
  World world(2, cfg);
  transport::FaultConfig black_hole;
  black_hole.seed = 99;
  black_hole.drop_rate = 1.0;
  world.fabric().inject_faults(0, 1, black_hole);
  world.fabric().inject_faults(1, 0, black_hole);

  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    constexpr std::size_t kCount = 64;
    std::vector<std::int64_t> mine(kCount, 1);
    std::vector<std::int64_t> out(kCount);
    // Symmetric collectives: every rank sends, so every rank's flow dies
    // and its posted receives are failed along with it.
    EXPECT_EQ(allreduce(comm, mine.data(), out.data(), kCount,
                        Datatype::kInt64, ReduceOp::kSum, {},
                        CollAlgo::kRecursiveDoubling),
              ErrorCode::kCommError);
    EXPECT_EQ(allreduce(comm, mine.data(), out.data(), kCount,
                        Datatype::kInt64, ReduceOp::kSum, {},
                        CollAlgo::kReduceScatterAllgather),
              ErrorCode::kCommError);
    std::vector<std::int64_t> gathered(kCount * 2);
    EXPECT_EQ(allgather(comm, mine.data(), kCount * sizeof(std::int64_t),
                        gathered.data(), {}, CollAlgo::kRing),
              ErrorCode::kCommError);
    std::vector<std::int64_t> wide(kCount * 2, 1);
    EXPECT_EQ(reduce_scatter_block(comm, wide.data(), out.data(), kCount,
                                   Datatype::kInt64, ReduceOp::kSum, {},
                                   CollAlgo::kPairwise),
              ErrorCode::kCommError);
    EXPECT_EQ(barrier(comm), ErrorCode::kCommError);
  });
}

}  // namespace
}  // namespace motor::mpi
