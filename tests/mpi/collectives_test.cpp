#include "mpi/collectives.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/world.hpp"

namespace motor::mpi {
namespace {

// Most collectives are verified across several world sizes, including
// non-powers-of-two, which exercise the tree/ring algorithms' edge paths.
class CollectiveSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizeTest, BarrierCompletes) {
  World world(GetParam());
  world.run([](RankCtx& ctx) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(barrier(ctx.comm_world()), ErrorCode::kSuccess);
    }
  });
}

TEST_P(CollectiveSizeTest, BcastFromEveryRoot) {
  const int n = GetParam();
  World world(n);
  world.run([n](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    for (int root = 0; root < n; ++root) {
      std::vector<std::int32_t> buf(17, comm.rank() == root ? root * 7 : -1);
      ASSERT_EQ(bcast(comm, buf.data(), buf.size() * sizeof(std::int32_t), root),
                ErrorCode::kSuccess);
      for (auto v : buf) EXPECT_EQ(v, root * 7);
    }
  });
}

TEST_P(CollectiveSizeTest, ScatterDistributesBlocks) {
  const int n = GetParam();
  World world(n);
  world.run([n](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    constexpr int kPer = 3;
    std::vector<std::int32_t> send;
    if (comm.rank() == 0) {
      send.resize(static_cast<std::size_t>(n * kPer));
      std::iota(send.begin(), send.end(), 0);
    }
    std::vector<std::int32_t> recv(kPer, -1);
    ASSERT_EQ(scatter(comm, send.data(), kPer * sizeof(std::int32_t),
                      recv.data(), 0),
              ErrorCode::kSuccess);
    for (int i = 0; i < kPer; ++i) {
      EXPECT_EQ(recv[static_cast<std::size_t>(i)], comm.rank() * kPer + i);
    }
  });
}

TEST_P(CollectiveSizeTest, GatherCollectsBlocks) {
  const int n = GetParam();
  World world(n);
  world.run([n](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    const std::int32_t mine[2] = {comm.rank(), comm.rank() * 10};
    std::vector<std::int32_t> all;
    if (comm.rank() == 0) all.resize(static_cast<std::size_t>(2 * n), -1);
    ASSERT_EQ(gather(comm, mine, sizeof mine, all.data(), 0),
              ErrorCode::kSuccess);
    if (comm.rank() == 0) {
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r);
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * 10);
      }
    }
  });
}

TEST_P(CollectiveSizeTest, AllgatherGivesEveryoneEverything) {
  const int n = GetParam();
  World world(n);
  world.run([n](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    const std::int32_t mine = comm.rank() + 100;
    std::vector<std::int32_t> all(static_cast<std::size_t>(n), -1);
    ASSERT_EQ(allgather(comm, &mine, sizeof mine, all.data()),
              ErrorCode::kSuccess);
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r + 100);
    }
  });
}

TEST_P(CollectiveSizeTest, ReduceSumMatchesSerialReference) {
  const int n = GetParam();
  World world(n);
  world.run([n](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    std::vector<std::int64_t> contrib{comm.rank() + 1, comm.rank() * 2, 7};
    std::vector<std::int64_t> out(3, 0);
    ASSERT_EQ(reduce(comm, contrib.data(), out.data(), 3, Datatype::kInt64,
                     ReduceOp::kSum, 0),
              ErrorCode::kSuccess);
    if (comm.rank() == 0) {
      EXPECT_EQ(out[0], static_cast<std::int64_t>(n) * (n + 1) / 2);
      EXPECT_EQ(out[1], static_cast<std::int64_t>(n) * (n - 1));
      EXPECT_EQ(out[2], 7 * n);
    }
  });
}

TEST_P(CollectiveSizeTest, AllreduceMaxAgreesEverywhere) {
  const int n = GetParam();
  World world(n);
  world.run([n](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    const double mine = static_cast<double>((comm.rank() * 37) % n);
    double best = -1;
    ASSERT_EQ(allreduce(comm, &mine, &best, 1, Datatype::kDouble,
                        ReduceOp::kMax),
              ErrorCode::kSuccess);
    double expected = 0;
    for (int r = 0; r < n; ++r) {
      expected = std::max(expected, static_cast<double>((r * 37) % n));
    }
    EXPECT_DOUBLE_EQ(best, expected);
  });
}

TEST_P(CollectiveSizeTest, AlltoallTransposesBlocks) {
  const int n = GetParam();
  World world(n);
  world.run([n](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    std::vector<std::int32_t> send(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      send[static_cast<std::size_t>(i)] = comm.rank() * 1000 + i;
    }
    std::vector<std::int32_t> recv(static_cast<std::size_t>(n), -1);
    ASSERT_EQ(alltoall(comm, send.data(), sizeof(std::int32_t), recv.data()),
              ErrorCode::kSuccess);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(recv[static_cast<std::size_t>(i)], i * 1000 + comm.rank());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(CollectivesTest, ScattervHandlesUnevenBlocks) {
  World world(3);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    // Rank r receives r+1 ints.
    std::vector<std::size_t> counts{1 * sizeof(std::int32_t),
                                    2 * sizeof(std::int32_t),
                                    3 * sizeof(std::int32_t)};
    std::vector<std::size_t> displs{0, counts[0], counts[0] + counts[1]};
    std::vector<std::int32_t> send{10, 20, 21, 30, 31, 32};
    std::vector<std::int32_t> recv(static_cast<std::size_t>(comm.rank() + 1));
    ASSERT_EQ(scatterv(comm, send.data(), counts, displs, recv.data(),
                       recv.size() * sizeof(std::int32_t), 0),
              ErrorCode::kSuccess);
    for (int i = 0; i <= comm.rank(); ++i) {
      EXPECT_EQ(recv[static_cast<std::size_t>(i)], (comm.rank() + 1) * 10 + i);
    }
  });
}

TEST(CollectivesTest, GathervReassemblesUnevenBlocks) {
  World world(3);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    std::vector<std::int32_t> mine(static_cast<std::size_t>(comm.rank() + 1));
    for (int i = 0; i <= comm.rank(); ++i) {
      mine[static_cast<std::size_t>(i)] = (comm.rank() + 1) * 10 + i;
    }
    std::vector<std::size_t> counts{1 * sizeof(std::int32_t),
                                    2 * sizeof(std::int32_t),
                                    3 * sizeof(std::int32_t)};
    std::vector<std::size_t> displs{0, counts[0], counts[0] + counts[1]};
    std::vector<std::int32_t> all(6, -1);
    ASSERT_EQ(gatherv(comm, mine.data(), mine.size() * sizeof(std::int32_t),
                      all.data(), counts, displs, 0),
              ErrorCode::kSuccess);
    if (comm.rank() == 0) {
      EXPECT_EQ(all, (std::vector<std::int32_t>{10, 20, 21, 30, 31, 32}));
    }
  });
}

TEST(CollectivesTest, LargePayloadBcastUsesRendezvousPath) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    std::vector<std::uint8_t> buf(300 * 1024);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<std::uint8_t>(i * 31);
      }
    }
    ASSERT_EQ(bcast(comm, buf.data(), buf.size(), 0), ErrorCode::kSuccess);
    for (std::size_t i = 0; i < buf.size(); i += 997) {
      EXPECT_EQ(buf[i], static_cast<std::uint8_t>(i * 31));
    }
  });
}

TEST(CollectivesTest, NullCommReturnsCommError) {
  Comm null_comm;
  std::int32_t v = 0;
  EXPECT_EQ(bcast(null_comm, &v, sizeof v, 0), ErrorCode::kCommError);
  EXPECT_EQ(barrier(null_comm), ErrorCode::kCommError);
}

}  // namespace
}  // namespace motor::mpi
