#include "mpi/comm.hpp"

#include <gtest/gtest.h>

#include "mpi/collectives.hpp"
#include "mpi/pt2pt.hpp"
#include "mpi/world.hpp"

namespace motor::mpi {
namespace {

TEST(CommTest, WorldCommBasics) {
  World world(4);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    EXPECT_EQ(comm.size(), 4);
    EXPECT_EQ(comm.rank(), ctx.world_rank());
    EXPECT_FALSE(comm.is_inter());
    EXPECT_FALSE(comm.is_null());
    EXPECT_EQ(comm.context_id(), 1);
  });
}

TEST(CommTest, DupIsolatesTraffic) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    Comm dup = comm_dup(comm);
    EXPECT_NE(dup.context_id(), comm.context_id());
    EXPECT_EQ(dup.size(), comm.size());
    EXPECT_EQ(dup.rank(), comm.rank());

    // A message on the dup must not match a receive on the world comm
    // despite identical (src, tag).
    if (comm.rank() == 0) {
      std::int32_t on_dup = 1, on_world = 2;
      ASSERT_EQ(send(dup, &on_dup, sizeof on_dup, 1, 0), ErrorCode::kSuccess);
      ASSERT_EQ(send(comm, &on_world, sizeof on_world, 1, 0),
                ErrorCode::kSuccess);
    } else {
      std::int32_t got = 0;
      ASSERT_EQ(recv(comm, &got, sizeof got, 0, 0), ErrorCode::kSuccess);
      EXPECT_EQ(got, 2);
      ASSERT_EQ(recv(dup, &got, sizeof got, 0, 0), ErrorCode::kSuccess);
      EXPECT_EQ(got, 1);
    }
  });
}

TEST(CommTest, SplitByParity) {
  World world(5);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    const int color = comm.rank() % 2;
    Comm sub = comm_split(comm, color, /*key=*/comm.rank());
    ASSERT_FALSE(sub.is_null());
    const int expected_size = color == 0 ? 3 : 2;
    EXPECT_EQ(sub.size(), expected_size);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);

    // Sum of world ranks within each parity class.
    std::int32_t mine = comm.rank(), total = 0;
    ASSERT_EQ(allreduce(sub, &mine, &total, 1, Datatype::kInt32,
                        ReduceOp::kSum),
              ErrorCode::kSuccess);
    EXPECT_EQ(total, color == 0 ? 0 + 2 + 4 : 1 + 3);
  });
}

TEST(CommTest, SplitHonoursKeyOrdering) {
  World world(4);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    // Reverse order: highest world rank gets key 0.
    Comm sub = comm_split(comm, 0, /*key=*/comm.size() - comm.rank());
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
  });
}

TEST(CommTest, SplitWithNegativeColorYieldsNull) {
  World world(3);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    Comm sub = comm_split(comm, comm.rank() == 1 ? -1 : 0, 0);
    if (comm.rank() == 1) {
      EXPECT_TRUE(sub.is_null());
    } else {
      ASSERT_FALSE(sub.is_null());
      EXPECT_EQ(sub.size(), 2);
    }
  });
}

TEST(CommTest, CreateSubsetCommunicator) {
  World world(4);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    const Group evens = comm.group().incl({0, 2});
    Comm sub = comm_create(comm, evens);
    if (comm.rank() % 2 == 0) {
      ASSERT_FALSE(sub.is_null());
      EXPECT_EQ(sub.size(), 2);
      EXPECT_EQ(sub.rank(), comm.rank() / 2);
      std::int32_t v = comm.rank() == 0 ? 55 : 0;
      ASSERT_EQ(bcast(sub, &v, sizeof v, 0), ErrorCode::kSuccess);
      EXPECT_EQ(v, 55);
    } else {
      EXPECT_TRUE(sub.is_null());
    }
  });
}

TEST(CommTest, CollectiveTagsAreSequenced) {
  World world(1);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    const int t1 = comm.next_collective_tag();
    const int t2 = comm.next_collective_tag();
    EXPECT_GE(t1, kCollectiveTagBase);
    EXPECT_EQ(t2, t1 + 1);
  });
}

TEST(CommTest, NestedSplitOfSplit) {
  World world(4);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    Comm half = comm_split(comm, comm.rank() / 2, comm.rank());
    ASSERT_EQ(half.size(), 2);
    Comm single = comm_split(half, half.rank(), 0);
    ASSERT_EQ(single.size(), 1);
    EXPECT_EQ(single.rank(), 0);
  });
}

}  // namespace
}  // namespace motor::mpi
