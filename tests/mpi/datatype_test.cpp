#include "mpi/datatype.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/status.hpp"

namespace motor::mpi {
namespace {

TEST(DatatypeTest, SizesMatchCTypes) {
  EXPECT_EQ(datatype_size(Datatype::kByte), 1u);
  EXPECT_EQ(datatype_size(Datatype::kChar), 1u);
  EXPECT_EQ(datatype_size(Datatype::kInt16), 2u);
  EXPECT_EQ(datatype_size(Datatype::kInt32), 4u);
  EXPECT_EQ(datatype_size(Datatype::kUInt32), 4u);
  EXPECT_EQ(datatype_size(Datatype::kInt64), 8u);
  EXPECT_EQ(datatype_size(Datatype::kFloat), sizeof(float));
  EXPECT_EQ(datatype_size(Datatype::kDouble), sizeof(double));
  EXPECT_EQ(datatype_size(Datatype::kPacked), 1u);
}

TEST(DatatypeTest, NamesAreStable) {
  EXPECT_EQ(datatype_name(Datatype::kInt32), "int32");
  EXPECT_EQ(datatype_name(Datatype::kDouble), "double");
}

TEST(ReduceApplyTest, SumInt32) {
  std::vector<std::int32_t> in{1, 2, 3}, inout{10, 20, 30};
  reduce_apply(ReduceOp::kSum, Datatype::kInt32, in.data(), inout.data(), 3);
  EXPECT_EQ(inout, (std::vector<std::int32_t>{11, 22, 33}));
}

TEST(ReduceApplyTest, ProdDouble) {
  std::vector<double> in{2.0, 0.5}, inout{3.0, 8.0};
  reduce_apply(ReduceOp::kProd, Datatype::kDouble, in.data(), inout.data(), 2);
  EXPECT_DOUBLE_EQ(inout[0], 6.0);
  EXPECT_DOUBLE_EQ(inout[1], 4.0);
}

TEST(ReduceApplyTest, MinMaxInt64) {
  std::vector<std::int64_t> in{-5, 7}, lo{1, 1}, hi{1, 1};
  reduce_apply(ReduceOp::kMin, Datatype::kInt64, in.data(), lo.data(), 2);
  reduce_apply(ReduceOp::kMax, Datatype::kInt64, in.data(), hi.data(), 2);
  EXPECT_EQ(lo, (std::vector<std::int64_t>{-5, 1}));
  EXPECT_EQ(hi, (std::vector<std::int64_t>{1, 7}));
}

TEST(ReduceApplyTest, LogicalOpsOnIntegers) {
  std::vector<std::int32_t> in{0, 3}, a{2, 0}, o{0, 0};
  reduce_apply(ReduceOp::kLogicalAnd, Datatype::kInt32, in.data(), a.data(), 2);
  reduce_apply(ReduceOp::kLogicalOr, Datatype::kInt32, in.data(), o.data(), 2);
  EXPECT_EQ(a, (std::vector<std::int32_t>{0, 0}));
  EXPECT_EQ(o, (std::vector<std::int32_t>{0, 1}));
}

TEST(ReduceApplyTest, BitwiseOps) {
  std::vector<std::uint32_t> in{0b1100}, band{0b1010}, bor{0b1010};
  reduce_apply(ReduceOp::kBitAnd, Datatype::kUInt32, in.data(), band.data(), 1);
  reduce_apply(ReduceOp::kBitOr, Datatype::kUInt32, in.data(), bor.data(), 1);
  EXPECT_EQ(band[0], 0b1000u);
  EXPECT_EQ(bor[0], 0b1110u);
}

TEST(ReduceApplyTest, LogicalOnFloatFatals) {
  float in = 1.0f, inout = 1.0f;
  EXPECT_THROW(
      reduce_apply(ReduceOp::kBitAnd, Datatype::kFloat, &in, &inout, 1),
      FatalError);
}

}  // namespace
}  // namespace motor::mpi
