#include "mpi/derived.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "mpi/world.hpp"

namespace motor::mpi {
namespace {

TEST(DerivedTest, BasicTypeHasUnitMap) {
  const DatatypeDef d = DatatypeDef::basic(Datatype::kDouble);
  EXPECT_EQ(d.size(), 8u);
  EXPECT_EQ(d.extent(), 8u);
  ASSERT_EQ(d.typemap().size(), 1u);
  EXPECT_TRUE(d.is_contiguous());
}

TEST(DerivedTest, ContiguousComposes) {
  const DatatypeDef d =
      DatatypeDef::contiguous(4, DatatypeDef::basic(Datatype::kInt32));
  EXPECT_EQ(d.size(), 16u);
  EXPECT_EQ(d.extent(), 16u);
  EXPECT_TRUE(d.is_contiguous());
  EXPECT_EQ(d.typemap()[2].first, 8u);
}

TEST(DerivedTest, VectorDescribesStridedColumns) {
  // A column of a 3x4 row-major int matrix: 3 blocks of 1, stride 4.
  const DatatypeDef col =
      DatatypeDef::vector(3, 1, 4, DatatypeDef::basic(Datatype::kInt32));
  EXPECT_EQ(col.size(), 12u);            // 3 ints of data
  EXPECT_EQ(col.extent(), (2 * 4 + 1) * 4u);  // first to last byte
  EXPECT_FALSE(col.is_contiguous());
  EXPECT_EQ(col.typemap()[0].first, 0u);
  EXPECT_EQ(col.typemap()[1].first, 16u);
  EXPECT_EQ(col.typemap()[2].first, 32u);
}

TEST(DerivedTest, VectorPackUnpackRoundTrip) {
  std::int32_t matrix[3][4];
  std::iota(&matrix[0][0], &matrix[0][0] + 12, 0);
  const DatatypeDef col =
      DatatypeDef::vector(3, 1, 4, DatatypeDef::basic(Datatype::kInt32));

  ByteBuffer packed;
  col.pack(&matrix[0][1], 1, packed);  // column 1
  ASSERT_EQ(packed.size(), 12u);

  std::int32_t out[3] = {};
  packed.seek(0);
  const DatatypeDef dst =
      DatatypeDef::contiguous(3, DatatypeDef::basic(Datatype::kInt32));
  ASSERT_TRUE(dst.unpack(packed, out, 1).is_ok());
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 5);
  EXPECT_EQ(out[2], 9);
}

TEST(DerivedTest, IndexedGathersIrregularBlocks) {
  const int blocklengths[] = {2, 1, 3};
  const int displs[] = {0, 4, 6};
  const DatatypeDef d = DatatypeDef::indexed(
      blocklengths, displs, DatatypeDef::basic(Datatype::kUInt8));
  EXPECT_EQ(d.size(), 6u);
  EXPECT_EQ(d.extent(), 9u);

  const std::uint8_t src[9] = {10, 11, 12, 13, 14, 15, 16, 17, 18};
  ByteBuffer packed;
  d.pack(src, 1, packed);
  ASSERT_EQ(packed.size(), 6u);
  const auto* p = reinterpret_cast<const std::uint8_t*>(packed.data());
  EXPECT_EQ(p[0], 10);
  EXPECT_EQ(p[1], 11);
  EXPECT_EQ(p[2], 14);
  EXPECT_EQ(p[3], 16);
  EXPECT_EQ(p[4], 17);
  EXPECT_EQ(p[5], 18);
}

TEST(DerivedTest, StructureWithGaps) {
  struct Particle {
    double x;
    std::int32_t id;
    // 4 bytes padding
    double v;
  };
  const std::pair<std::size_t, Datatype> fields[] = {
      {offsetof(Particle, x), Datatype::kDouble},
      {offsetof(Particle, id), Datatype::kInt32},
      {offsetof(Particle, v), Datatype::kDouble},
  };
  const DatatypeDef d = DatatypeDef::structure(fields, sizeof(Particle));
  EXPECT_EQ(d.size(), 20u);
  EXPECT_EQ(d.extent(), sizeof(Particle));
  EXPECT_FALSE(d.is_contiguous());

  Particle in[2] = {{1.5, 7, -2.0}, {3.25, 9, 0.5}};
  ByteBuffer packed;
  d.pack(in, 2, packed);
  EXPECT_EQ(packed.size(), 40u);

  Particle out[2] = {};
  packed.seek(0);
  ASSERT_TRUE(d.unpack(packed, out, 2).is_ok());
  EXPECT_DOUBLE_EQ(out[1].x, 3.25);
  EXPECT_EQ(out[1].id, 9);
  EXPECT_DOUBLE_EQ(out[0].v, -2.0);
}

TEST(DerivedTest, NestedVectorOfContiguous) {
  // 2 blocks, each 2 elements of (3 contiguous int16), stride 3 elements.
  const DatatypeDef inner =
      DatatypeDef::contiguous(3, DatatypeDef::basic(Datatype::kInt16));
  const DatatypeDef d = DatatypeDef::vector(2, 2, 3, inner);
  EXPECT_EQ(d.size(), 2u * 2u * 6u);
  EXPECT_EQ(d.extent(), (3 + 2) * 6u);
  EXPECT_EQ(d.typemap().size(), 12u);
}

TEST(DerivedTest, MatrixColumnExchangeBetweenRanks) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    constexpr int kRows = 5, kCols = 6;
    const DatatypeDef column = DatatypeDef::vector(
        kRows, 1, kCols, DatatypeDef::basic(Datatype::kDouble));

    double matrix[kRows][kCols] = {};
    if (comm.rank() == 0) {
      for (int r = 0; r < kRows; ++r) {
        for (int c = 0; c < kCols; ++c) matrix[r][c] = r * 10 + c;
      }
      // Ship column 2 as a derived type.
      ASSERT_EQ(send_derived(comm, &matrix[0][2], 1, column, 1, 0),
                ErrorCode::kSuccess);
    } else {
      // Land it as column 4 of the local matrix.
      ASSERT_EQ(recv_derived(comm, &matrix[0][4], 1, column, 0, 0),
                ErrorCode::kSuccess);
      for (int r = 0; r < kRows; ++r) {
        EXPECT_DOUBLE_EQ(matrix[r][4], r * 10 + 2);
        EXPECT_DOUBLE_EQ(matrix[r][0], 0.0);  // rest untouched
      }
    }
  });
}

TEST(DerivedTest, ContiguousFastPathMatchesWireSize) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    const DatatypeDef d =
        DatatypeDef::contiguous(8, DatatypeDef::basic(Datatype::kInt64));
    std::int64_t data[8];
    if (comm.rank() == 0) {
      std::iota(data, data + 8, 100);
      ASSERT_EQ(send_derived(comm, data, 1, d, 1, 0), ErrorCode::kSuccess);
    } else {
      MsgStatus st;
      ASSERT_EQ(recv_derived(comm, data, 1, d, 0, 0, &st),
                ErrorCode::kSuccess);
      EXPECT_EQ(st.count_bytes, 64u);
      EXPECT_EQ(data[7], 107);
    }
  });
}

}  // namespace
}  // namespace motor::mpi
