// Device-level protocol tests: eager/rendezvous selection, queue
// statistics, byte accounting, and polling-wait hooks — exercised below
// the pt2pt layer.
#include "mpi/device.hpp"

#include <gtest/gtest.h>

#include "transport/fabric.hpp"

namespace motor::mpi {
namespace {

struct DevicePair {
  transport::Fabric fabric;
  Device a, b;

  explicit DevicePair(DeviceConfig config = DeviceConfig{})
      : fabric(2, transport::ChannelKind::kRing, 1 << 20),
        a(fabric, 0, config),
        b(fabric, 1, config) {}

  void pump_both() {
    a.progress();
    b.progress();
  }
};

TEST(DeviceTest, EagerMessageBelowThreshold) {
  DevicePair pair;
  std::vector<std::byte> out(1000, std::byte{7});
  std::vector<std::byte> in(1000);
  Request s = pair.a.post_send(out, 1, 0, 1, false);
  Request r = pair.b.post_recv(in, 0, 0, 1);
  for (int i = 0; i < 50 && !(s->is_complete() && r->is_complete()); ++i) {
    pair.pump_both();
  }
  ASSERT_TRUE(s->is_complete());
  ASSERT_TRUE(r->is_complete());
  EXPECT_EQ(in, out);
  // Eager: one header + payload on the wire from a's side.
  EXPECT_EQ(pair.a.bytes_sent(), kPacketHeaderBytes + 1000);
}

TEST(DeviceTest, RendezvousAboveThreshold) {
  DeviceConfig cfg;
  cfg.eager_threshold = 256;
  DevicePair pair(cfg);
  std::vector<std::byte> out(4096, std::byte{3});
  std::vector<std::byte> in(4096);
  Request s = pair.a.post_send(out, 1, 5, 1, false);

  // Sender alone cannot complete: rendezvous awaits the CTS.
  for (int i = 0; i < 20; ++i) pair.a.progress();
  EXPECT_FALSE(s->is_complete());
  EXPECT_EQ(pair.a.bytes_sent(), kPacketHeaderBytes);  // just the RTS

  Request r = pair.b.post_recv(in, 0, 5, 1);
  for (int i = 0; i < 200 && !(s->is_complete() && r->is_complete()); ++i) {
    pair.pump_both();
  }
  ASSERT_TRUE(s->is_complete());
  ASSERT_TRUE(r->is_complete());
  EXPECT_EQ(in, out);
  // RTS + DATA(header+payload) from a; CTS from b.
  EXPECT_EQ(pair.a.bytes_sent(), 2 * kPacketHeaderBytes + 4096);
  EXPECT_EQ(pair.b.bytes_sent(), kPacketHeaderBytes);
}

TEST(DeviceTest, UnexpectedQueueFillsAndDrains) {
  DevicePair pair;
  std::vector<std::byte> out(64, std::byte{1});
  Request s1 = pair.a.post_send(out, 1, 1, 1, false);
  Request s2 = pair.a.post_send(out, 1, 2, 1, false);
  for (int i = 0; i < 50; ++i) pair.pump_both();
  EXPECT_EQ(pair.b.unexpected_count(), 2u);
  EXPECT_EQ(pair.b.posted_recv_count(), 0u);

  std::vector<std::byte> in(64);
  Request r = pair.b.post_recv(in, 0, 2, 1);
  EXPECT_TRUE(r->is_complete());  // matched from the unexpected queue
  EXPECT_EQ(pair.b.unexpected_count(), 1u);
  (void)s1;
  (void)s2;
}

TEST(DeviceTest, PostedQueueHoldsUnmatchedRecvs) {
  DevicePair pair;
  std::vector<std::byte> in(16);
  Request r1 = pair.b.post_recv(in, 0, 1, 1);
  Request r2 = pair.b.post_recv(in, 0, 2, 1);
  EXPECT_EQ(pair.b.posted_recv_count(), 2u);
  pair.b.cancel(r1);
  EXPECT_EQ(pair.b.posted_recv_count(), 1u);
  pair.b.cancel(r2);
  EXPECT_EQ(pair.b.posted_recv_count(), 0u);
}

TEST(DeviceTest, WaitInvokesPollHookEachIteration) {
  DevicePair pair;
  std::vector<std::byte> in(16);
  Request r = pair.b.post_recv(in, 0, 0, 1);

  int hook_calls = 0;
  std::vector<std::byte> out(16, std::byte{9});
  // Delay the send by a few hook invocations.
  pair.b.wait(pair.b.post_recv(in, 0, 99, 1), [&] {
    if (++hook_calls == 3) {
      Request s = pair.a.post_send(out, 1, 99, 1, false);
      for (int i = 0; i < 50; ++i) pair.a.progress();
    }
  });
  EXPECT_GE(hook_calls, 3);
  pair.b.cancel(r);
}

TEST(DeviceTest, SendCancelBeforeWireRemovesPacket) {
  DeviceConfig cfg;
  DevicePair pair(cfg);
  std::vector<std::byte> out(64, std::byte{4});
  Request s = pair.a.post_send(out, 1, 0, 1, false);
  // No progress yet: nothing on the wire, cancellable.
  pair.a.cancel(s);
  EXPECT_TRUE(s->cancelled);
  EXPECT_TRUE(s->is_complete());
  for (int i = 0; i < 20; ++i) pair.pump_both();
  EXPECT_EQ(pair.b.unexpected_count(), 0u);
}

TEST(DeviceTest, ZeroByteMessageCarriesEnvelopeOnly) {
  DevicePair pair;
  Request s = pair.a.post_send(ByteSpan{}, 1, 3, 1, false);
  std::vector<std::byte> in(8);
  Request r = pair.b.post_recv(in, 0, 3, 1);
  for (int i = 0; i < 50 && !r->is_complete(); ++i) pair.pump_both();
  ASSERT_TRUE(r->is_complete());
  EXPECT_EQ(r->transferred, 0u);
  EXPECT_EQ(Device::status_of(r).tag, 3);
  (void)s;
}

TEST(DeviceTest, RecvPostedWhileMessageIsStagingStillMatches) {
  // Regression: a message whose staging (unexpected) buffering is already
  // underway when the matching receive gets posted must still complete —
  // previously the finished staging went to the unexpected queue and the
  // posted receive waited forever (found by the Figure 10 benchmark).
  transport::Fabric fabric(2, transport::ChannelKind::kRing, 64);
  Device a(fabric, 0), b(fabric, 1);
  std::vector<std::byte> out(1000);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>(i * 7);
  }
  Request s = a.post_send(out, 1, 0, 1, false);

  // Drive until b has consumed the header and begun staging the payload
  // (the 64-byte ring guarantees many partial deliveries).
  for (int i = 0; i < 6; ++i) {
    a.progress();
    b.progress();
  }
  EXPECT_EQ(b.unexpected_count(), 0u);  // still streaming, not queued yet

  std::vector<std::byte> in(1000);
  Request r = b.post_recv(in, 0, 0, 1);  // posted mid-staging
  for (int i = 0; i < 10000 && !(s->is_complete() && r->is_complete()); ++i) {
    a.progress();
    b.progress();
  }
  ASSERT_TRUE(r->is_complete());
  EXPECT_EQ(in, out);
  EXPECT_EQ(b.unexpected_count(), 0u);
  EXPECT_EQ(b.posted_recv_count(), 0u);
}

TEST(DeviceTest, TinyChannelForcesPartialPacketDelivery) {
  // A 64-byte ring is smaller than header+payload: the device must stream
  // packets across many pumps without corruption.
  transport::Fabric fabric(2, transport::ChannelKind::kRing, 64);
  Device a(fabric, 0), b(fabric, 1);
  std::vector<std::byte> out(3000);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>(i * 13);
  }
  std::vector<std::byte> in(3000);
  Request s = a.post_send(out, 1, 0, 1, false);
  Request r = b.post_recv(in, 0, 0, 1);
  for (int i = 0; i < 10000 && !(s->is_complete() && r->is_complete()); ++i) {
    a.progress();
    b.progress();
  }
  ASSERT_TRUE(s->is_complete());
  ASSERT_TRUE(r->is_complete());
  EXPECT_EQ(in, out);
}

std::vector<std::byte> patterned(std::size_t n, int seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 31 + seed * 7) & 0xff);
  }
  return v;
}

TEST(DeviceTest, ZeroStagingWhenPrePostedLargeMessage) {
  // THE zero-copy acceptance property: a pre-posted rendezvous transfer
  // moves every payload byte user-buffer -> channel -> user-buffer with
  // no intermediate staging on either side.
  DeviceConfig cfg;
  cfg.eager_threshold = 256;
  cfg.max_packet_payload = 1024;
  DevicePair pair(cfg);
  const std::size_t kBytes = 100 * 1024;
  auto out = patterned(kBytes);
  std::vector<std::byte> in(kBytes);
  Request r = pair.b.post_recv(in, 0, 0, 1);  // pre-posted
  Request s = pair.a.post_send(out, 1, 0, 1, false);
  for (int i = 0; i < 1000 && !(s->is_complete() && r->is_complete()); ++i) {
    pair.pump_both();
  }
  ASSERT_TRUE(s->is_complete());
  ASSERT_TRUE(r->is_complete());
  EXPECT_EQ(in, out);
  EXPECT_EQ(pair.a.bytes_staged(), 0u);
  EXPECT_EQ(pair.b.bytes_staged(), 0u);
  EXPECT_EQ(pair.a.bytes_direct(), kBytes);
  EXPECT_EQ(pair.b.bytes_direct(), kBytes);
  // The stream was chunked at max_packet_payload: RTS + 100 DATA headers.
  EXPECT_EQ(pair.a.bytes_sent(), 101 * kPacketHeaderBytes + kBytes);
}

TEST(DeviceTest, StagedModeAccountsEveryCopy) {
  // The staged_copies ablation reproduces the wrapper-style data path:
  // flatten on send, bounce through staging on receive — and the copy
  // counters prove it.
  DeviceConfig cfg;
  cfg.eager_threshold = 256;
  cfg.max_packet_payload = 1024;
  cfg.staged_copies = true;
  DevicePair pair(cfg);
  const std::size_t kBytes = 16 * 1024;
  auto out = patterned(kBytes, 2);
  std::vector<std::byte> in(kBytes);
  Request r = pair.b.post_recv(in, 0, 0, 1);
  Request s = pair.a.post_send(out, 1, 0, 1, false);
  for (int i = 0; i < 1000 && !(s->is_complete() && r->is_complete()); ++i) {
    pair.pump_both();
  }
  ASSERT_TRUE(s->is_complete());
  ASSERT_TRUE(r->is_complete());
  EXPECT_EQ(in, out);  // same wire bytes, just with extra copies
  EXPECT_EQ(pair.a.bytes_staged(), kBytes);  // send-side flatten
  EXPECT_EQ(pair.b.bytes_staged(), kBytes);  // receive-side bounce
  EXPECT_EQ(pair.a.bytes_direct(), 0u);
  EXPECT_EQ(pair.b.bytes_direct(), 0u);
}

TEST(DeviceTest, UnexpectedMessagesAreTheOnlyStagedBytes) {
  DevicePair pair;
  const std::size_t kBytes = 2048;  // eager, below default threshold
  auto out = patterned(kBytes, 3);
  Request s = pair.a.post_send(out, 1, 0, 1, false);
  for (int i = 0; i < 100; ++i) pair.pump_both();  // arrives unexpected
  EXPECT_EQ(pair.b.unexpected_count(), 1u);
  EXPECT_EQ(pair.b.bytes_staged(), kBytes);

  std::vector<std::byte> in(kBytes);
  Request r = pair.b.post_recv(in, 0, 0, 1);
  ASSERT_TRUE(r->is_complete());
  EXPECT_EQ(in, out);
  (void)s;
}

TEST(DeviceTest, GatheredSendConcatenatesFragmentsEager) {
  DevicePair pair;
  auto a = patterned(300, 4);
  auto b = patterned(17, 5);
  auto c = patterned(700, 6);
  SpanVec msg{ByteSpan{a.data(), a.size()},
              ByteSpan{b.data(), b.size()},
              ByteSpan{c.data(), c.size()}};
  std::vector<std::byte> in(msg.total_bytes());
  Request r = pair.b.post_recv(in, 0, 0, 1);
  Request s = pair.a.post_send(msg, 1, 0, 1, false);
  for (int i = 0; i < 100 && !(s->is_complete() && r->is_complete()); ++i) {
    pair.pump_both();
  }
  ASSERT_TRUE(r->is_complete());
  std::vector<std::byte> expect;
  expect.insert(expect.end(), a.begin(), a.end());
  expect.insert(expect.end(), b.begin(), b.end());
  expect.insert(expect.end(), c.begin(), c.end());
  EXPECT_EQ(in, expect);
  EXPECT_EQ(r->transferred, expect.size());
  EXPECT_EQ(pair.a.bytes_staged(), 0u);
}

TEST(DeviceTest, GatheredSendStreamsFragmentsThroughRendezvousChunks) {
  // Fragment boundaries and DATA-chunk boundaries are independent: chunks
  // slice straight across the gather list without re-staging anything.
  DeviceConfig cfg;
  cfg.eager_threshold = 128;
  cfg.max_packet_payload = 512;
  DevicePair pair(cfg);
  auto a = patterned(700, 7);
  auto b = patterned(123, 8);
  auto c = patterned(1300, 9);
  SpanVec msg{ByteSpan{a.data(), a.size()},
              ByteSpan{b.data(), b.size()},
              ByteSpan{c.data(), c.size()}};
  std::vector<std::byte> in(msg.total_bytes());
  Request r = pair.b.post_recv(in, 0, 0, 1);
  Request s = pair.a.post_send(msg, 1, 0, 1, false);
  for (int i = 0; i < 1000 && !(s->is_complete() && r->is_complete()); ++i) {
    pair.pump_both();
  }
  ASSERT_TRUE(s->is_complete());
  ASSERT_TRUE(r->is_complete());
  std::vector<std::byte> expect;
  expect.insert(expect.end(), a.begin(), a.end());
  expect.insert(expect.end(), b.begin(), b.end());
  expect.insert(expect.end(), c.begin(), c.end());
  EXPECT_EQ(in, expect);
  EXPECT_EQ(pair.a.bytes_staged(), 0u);
  EXPECT_EQ(pair.b.bytes_staged(), 0u);
}

TEST(DeviceTest, ChunkedRendezvousTruncatesIntoSmallBuffer) {
  DeviceConfig cfg;
  cfg.eager_threshold = 256;
  cfg.max_packet_payload = 512;
  DevicePair pair(cfg);
  auto out = patterned(4096, 10);
  std::vector<std::byte> in(1000);
  Request r = pair.b.post_recv(in, 0, 0, 1);
  Request s = pair.a.post_send(out, 1, 0, 1, false);
  for (int i = 0; i < 1000 && !(s->is_complete() && r->is_complete()); ++i) {
    pair.pump_both();
  }
  ASSERT_TRUE(r->is_complete());
  EXPECT_EQ(r->error, ErrorCode::kTruncate);
  EXPECT_EQ(r->transferred, 1000u);
  EXPECT_TRUE(std::equal(in.begin(), in.end(), out.begin()));
}

TEST(DeviceTest, SinglePollDrainsAllReadyPackets) {
  // Progress must drain EVERY packet the channel already holds in one
  // call, not one packet per poll.
  DevicePair pair;
  constexpr int kN = 8;
  std::vector<std::vector<std::byte>> outs, ins;
  std::vector<Request> sends, recvs;
  for (int i = 0; i < kN; ++i) {
    outs.push_back(patterned(512, i));
    ins.emplace_back(512);
    recvs.push_back(pair.b.post_recv(ins.back(), 0, i, 1));
  }
  for (int i = 0; i < kN; ++i) {
    sends.push_back(pair.a.post_send(outs[static_cast<std::size_t>(i)], 1, i,
                                     1, false));
  }
  pair.a.progress();  // all eight packets onto the (1 MiB) wire

  pair.b.progress();  // ONE poll on the receiver
  for (int i = 0; i < kN; ++i) {
    EXPECT_TRUE(recvs[static_cast<std::size_t>(i)]->is_complete())
        << "recv " << i << " not drained by a single progress() call";
    EXPECT_EQ(ins[static_cast<std::size_t>(i)],
              outs[static_cast<std::size_t>(i)]);
  }
  (void)sends;
}

// Boundary matrix: message sizes straddling eager_threshold and
// max_packet_payload, through both the gathered and the staged path.
class DeviceBoundaryTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

TEST_P(DeviceBoundaryTest, RoundTripsExactly) {
  const auto [bytes, staged] = GetParam();
  DeviceConfig cfg;
  cfg.eager_threshold = 256;
  cfg.max_packet_payload = 512;
  cfg.staged_copies = staged;
  DevicePair pair(cfg);
  auto out = patterned(bytes, static_cast<int>(bytes));
  std::vector<std::byte> in(bytes);
  Request r = pair.b.post_recv(in, 0, 0, 1);
  Request s = pair.a.post_send(out, 1, 0, 1, false);
  for (int i = 0; i < 2000 && !(s->is_complete() && r->is_complete()); ++i) {
    pair.pump_both();
  }
  ASSERT_TRUE(s->is_complete());
  ASSERT_TRUE(r->is_complete());
  EXPECT_EQ(r->transferred, bytes);
  EXPECT_EQ(in, out);
  if (!staged) {
    EXPECT_EQ(pair.a.bytes_staged(), 0u);
    EXPECT_EQ(pair.b.bytes_staged(), 0u);
    EXPECT_EQ(pair.b.bytes_direct(), bytes);
  } else if (bytes > 0) {
    EXPECT_EQ(pair.a.bytes_staged(), bytes);
    EXPECT_EQ(pair.b.bytes_staged(), bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EagerAndPacketEdges, DeviceBoundaryTest,
    ::testing::Combine(
        // eager_threshold (256) +/- 1 and max_packet_payload (512) +/- 1,
        // the exact boundaries, and a multi-chunk size that is not a
        // multiple of the packet size.
        ::testing::Values<std::size_t>(255, 256, 257, 511, 512, 513, 1025,
                                       1536),
        ::testing::Bool()),
    [](const auto& info) {
      return (std::get<1>(info.param) ? std::string("staged")
                                      : std::string("gathered")) +
             std::to_string(std::get<0>(info.param));
    });

}  // namespace
}  // namespace motor::mpi
