// Device-level protocol tests: eager/rendezvous selection, queue
// statistics, byte accounting, and polling-wait hooks — exercised below
// the pt2pt layer.
#include "mpi/device.hpp"

#include <gtest/gtest.h>

#include "transport/fabric.hpp"

namespace motor::mpi {
namespace {

struct DevicePair {
  transport::Fabric fabric;
  Device a, b;

  explicit DevicePair(DeviceConfig config = DeviceConfig{})
      : fabric(2, transport::ChannelKind::kRing, 1 << 20),
        a(fabric, 0, config),
        b(fabric, 1, config) {}

  void pump_both() {
    a.progress();
    b.progress();
  }
};

TEST(DeviceTest, EagerMessageBelowThreshold) {
  DevicePair pair;
  std::vector<std::byte> out(1000, std::byte{7});
  std::vector<std::byte> in(1000);
  Request s = pair.a.post_send(out, 1, 0, 1, false);
  Request r = pair.b.post_recv(in, 0, 0, 1);
  for (int i = 0; i < 50 && !(s->is_complete() && r->is_complete()); ++i) {
    pair.pump_both();
  }
  ASSERT_TRUE(s->is_complete());
  ASSERT_TRUE(r->is_complete());
  EXPECT_EQ(in, out);
  // Eager: one header + payload on the wire from a's side.
  EXPECT_EQ(pair.a.bytes_sent(), kPacketHeaderBytes + 1000);
}

TEST(DeviceTest, RendezvousAboveThreshold) {
  DeviceConfig cfg;
  cfg.eager_threshold = 256;
  DevicePair pair(cfg);
  std::vector<std::byte> out(4096, std::byte{3});
  std::vector<std::byte> in(4096);
  Request s = pair.a.post_send(out, 1, 5, 1, false);

  // Sender alone cannot complete: rendezvous awaits the CTS.
  for (int i = 0; i < 20; ++i) pair.a.progress();
  EXPECT_FALSE(s->is_complete());
  EXPECT_EQ(pair.a.bytes_sent(), kPacketHeaderBytes);  // just the RTS

  Request r = pair.b.post_recv(in, 0, 5, 1);
  for (int i = 0; i < 200 && !(s->is_complete() && r->is_complete()); ++i) {
    pair.pump_both();
  }
  ASSERT_TRUE(s->is_complete());
  ASSERT_TRUE(r->is_complete());
  EXPECT_EQ(in, out);
  // RTS + DATA(header+payload) from a; CTS from b.
  EXPECT_EQ(pair.a.bytes_sent(), 2 * kPacketHeaderBytes + 4096);
  EXPECT_EQ(pair.b.bytes_sent(), kPacketHeaderBytes);
}

TEST(DeviceTest, UnexpectedQueueFillsAndDrains) {
  DevicePair pair;
  std::vector<std::byte> out(64, std::byte{1});
  Request s1 = pair.a.post_send(out, 1, 1, 1, false);
  Request s2 = pair.a.post_send(out, 1, 2, 1, false);
  for (int i = 0; i < 50; ++i) pair.pump_both();
  EXPECT_EQ(pair.b.unexpected_count(), 2u);
  EXPECT_EQ(pair.b.posted_recv_count(), 0u);

  std::vector<std::byte> in(64);
  Request r = pair.b.post_recv(in, 0, 2, 1);
  EXPECT_TRUE(r->is_complete());  // matched from the unexpected queue
  EXPECT_EQ(pair.b.unexpected_count(), 1u);
  (void)s1;
  (void)s2;
}

TEST(DeviceTest, PostedQueueHoldsUnmatchedRecvs) {
  DevicePair pair;
  std::vector<std::byte> in(16);
  Request r1 = pair.b.post_recv(in, 0, 1, 1);
  Request r2 = pair.b.post_recv(in, 0, 2, 1);
  EXPECT_EQ(pair.b.posted_recv_count(), 2u);
  pair.b.cancel(r1);
  EXPECT_EQ(pair.b.posted_recv_count(), 1u);
  pair.b.cancel(r2);
  EXPECT_EQ(pair.b.posted_recv_count(), 0u);
}

TEST(DeviceTest, WaitInvokesPollHookEachIteration) {
  DevicePair pair;
  std::vector<std::byte> in(16);
  Request r = pair.b.post_recv(in, 0, 0, 1);

  int hook_calls = 0;
  std::vector<std::byte> out(16, std::byte{9});
  // Delay the send by a few hook invocations.
  pair.b.wait(pair.b.post_recv(in, 0, 99, 1), [&] {
    if (++hook_calls == 3) {
      Request s = pair.a.post_send(out, 1, 99, 1, false);
      for (int i = 0; i < 50; ++i) pair.a.progress();
    }
  });
  EXPECT_GE(hook_calls, 3);
  pair.b.cancel(r);
}

TEST(DeviceTest, SendCancelBeforeWireRemovesPacket) {
  DeviceConfig cfg;
  DevicePair pair(cfg);
  std::vector<std::byte> out(64, std::byte{4});
  Request s = pair.a.post_send(out, 1, 0, 1, false);
  // No progress yet: nothing on the wire, cancellable.
  pair.a.cancel(s);
  EXPECT_TRUE(s->cancelled);
  EXPECT_TRUE(s->is_complete());
  for (int i = 0; i < 20; ++i) pair.pump_both();
  EXPECT_EQ(pair.b.unexpected_count(), 0u);
}

TEST(DeviceTest, ZeroByteMessageCarriesEnvelopeOnly) {
  DevicePair pair;
  Request s = pair.a.post_send({}, 1, 3, 1, false);
  std::vector<std::byte> in(8);
  Request r = pair.b.post_recv(in, 0, 3, 1);
  for (int i = 0; i < 50 && !r->is_complete(); ++i) pair.pump_both();
  ASSERT_TRUE(r->is_complete());
  EXPECT_EQ(r->transferred, 0u);
  EXPECT_EQ(Device::status_of(r).tag, 3);
  (void)s;
}

TEST(DeviceTest, RecvPostedWhileMessageIsStagingStillMatches) {
  // Regression: a message whose staging (unexpected) buffering is already
  // underway when the matching receive gets posted must still complete —
  // previously the finished staging went to the unexpected queue and the
  // posted receive waited forever (found by the Figure 10 benchmark).
  transport::Fabric fabric(2, transport::ChannelKind::kRing, 64);
  Device a(fabric, 0), b(fabric, 1);
  std::vector<std::byte> out(1000);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>(i * 7);
  }
  Request s = a.post_send(out, 1, 0, 1, false);

  // Drive until b has consumed the header and begun staging the payload
  // (the 64-byte ring guarantees many partial deliveries).
  for (int i = 0; i < 6; ++i) {
    a.progress();
    b.progress();
  }
  EXPECT_EQ(b.unexpected_count(), 0u);  // still streaming, not queued yet

  std::vector<std::byte> in(1000);
  Request r = b.post_recv(in, 0, 0, 1);  // posted mid-staging
  for (int i = 0; i < 10000 && !(s->is_complete() && r->is_complete()); ++i) {
    a.progress();
    b.progress();
  }
  ASSERT_TRUE(r->is_complete());
  EXPECT_EQ(in, out);
  EXPECT_EQ(b.unexpected_count(), 0u);
  EXPECT_EQ(b.posted_recv_count(), 0u);
}

TEST(DeviceTest, TinyChannelForcesPartialPacketDelivery) {
  // A 64-byte ring is smaller than header+payload: the device must stream
  // packets across many pumps without corruption.
  transport::Fabric fabric(2, transport::ChannelKind::kRing, 64);
  Device a(fabric, 0), b(fabric, 1);
  std::vector<std::byte> out(3000);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>(i * 13);
  }
  std::vector<std::byte> in(3000);
  Request s = a.post_send(out, 1, 0, 1, false);
  Request r = b.post_recv(in, 0, 0, 1);
  for (int i = 0; i < 10000 && !(s->is_complete() && r->is_complete()); ++i) {
    a.progress();
    b.progress();
  }
  ASSERT_TRUE(s->is_complete());
  ASSERT_TRUE(r->is_complete());
  EXPECT_EQ(in, out);
}

}  // namespace
}  // namespace motor::mpi
