// waitany/testany/testall and the scan / reduce_scatter_block collectives.
#include <gtest/gtest.h>

#include "mpi/collectives.hpp"
#include "mpi/pt2pt.hpp"
#include "mpi/world.hpp"

namespace motor::mpi {
namespace {

TEST(WaitAnyTest, ReturnsFirstCompletion) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    if (comm.rank() == 0) {
      // Only tag 2 will be satisfiable at first.
      std::int32_t a = 0, b = 0;
      std::vector<Request> reqs{irecv(comm, &a, sizeof a, 1, 1),
                                irecv(comm, &b, sizeof b, 1, 2)};
      MsgStatus st;
      const int idx = waitany(comm, reqs, &st);
      EXPECT_EQ(idx, 1);
      EXPECT_EQ(st.tag, 2);
      EXPECT_EQ(b, 22);
      // MPI convention: the caller retires the completed slot (the analog
      // of MPI_Waitany writing MPI_REQUEST_NULL).
      reqs[1] = nullptr;
      // Unblock the peer's second send.
      std::int32_t go = 1;
      ASSERT_EQ(send(comm, &go, sizeof go, 1, 3), ErrorCode::kSuccess);
      EXPECT_EQ(waitany(comm, reqs, &st), 0);
      EXPECT_EQ(a, 11);
    } else {
      std::int32_t v2 = 22;
      ASSERT_EQ(send(comm, &v2, sizeof v2, 0, 2), ErrorCode::kSuccess);
      std::int32_t go = 0;
      ASSERT_EQ(recv(comm, &go, sizeof go, 0, 3), ErrorCode::kSuccess);
      std::int32_t v1 = 11;
      ASSERT_EQ(send(comm, &v1, sizeof v1, 0, 1), ErrorCode::kSuccess);
    }
  });
}

TEST(WaitAnyTest, AllNullReturnsMinusOne) {
  World world(1);
  world.run([](RankCtx& ctx) {
    std::vector<Request> reqs{nullptr, nullptr};
    EXPECT_EQ(waitany(ctx.comm_world(), reqs), -1);
  });
}

TEST(TestAllTest, TracksCompletionOfBatch) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    constexpr int kN = 8;
    std::vector<std::int32_t> data(kN);
    std::vector<Request> reqs;
    if (comm.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        data[static_cast<std::size_t>(i)] = i;
        reqs.push_back(isend(comm, &data[static_cast<std::size_t>(i)],
                             sizeof(std::int32_t), 1, i));
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        reqs.push_back(irecv(comm, &data[static_cast<std::size_t>(i)],
                             sizeof(std::int32_t), 0, i));
      }
    }
    while (!testall(comm, reqs)) pal::Thread::yield();
    if (comm.rank() == 1) {
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(data[static_cast<std::size_t>(i)], i);
      }
    }
  });
}

class ScanSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(ScanSizeTest, InclusivePrefixSum) {
  const int n = GetParam();
  World world(n);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    const std::int64_t mine[2] = {comm.rank() + 1, 2};
    std::int64_t pref[2] = {0, 0};
    ASSERT_EQ(scan(comm, mine, pref, 2, Datatype::kInt64, ReduceOp::kSum),
              ErrorCode::kSuccess);
    const std::int64_t r = comm.rank();
    EXPECT_EQ(pref[0], (r + 1) * (r + 2) / 2);  // 1+2+...+(r+1)
    EXPECT_EQ(pref[1], 2 * (r + 1));
  });
}

TEST_P(ScanSizeTest, MaxScanIsMonotone) {
  const int n = GetParam();
  World world(n);
  world.run([n](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    // Values bounce around; the scan must be the running maximum.
    const std::int32_t mine = (comm.rank() * 37 + 11) % n;
    std::int32_t running = -1;
    ASSERT_EQ(scan(comm, &mine, &running, 1, Datatype::kInt32, ReduceOp::kMax),
              ErrorCode::kSuccess);
    std::int32_t expected = -1;
    for (int r = 0; r <= comm.rank(); ++r) {
      expected = std::max(expected, static_cast<std::int32_t>((r * 37 + 11) % n));
    }
    EXPECT_EQ(running, expected);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, ScanSizeTest, ::testing::Values(1, 2, 3, 5));

TEST(ReduceScatterTest, BlockVariantDistributesReducedVector) {
  World world(3);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    // Each rank contributes [r, r+1, r+2] per destination block of 1.
    std::int32_t contrib[3] = {comm.rank(), comm.rank() + 1, comm.rank() + 2};
    std::int32_t mine = -1;
    ASSERT_EQ(reduce_scatter_block(comm, contrib, &mine, 1, Datatype::kInt32,
                                   ReduceOp::kSum),
              ErrorCode::kSuccess);
    // Sum over ranks of (r + block) where block = my rank.
    EXPECT_EQ(mine, 0 + 1 + 2 + 3 * comm.rank());
  });
}

}  // namespace
}  // namespace motor::mpi
