#include "mpi/group.hpp"

#include <gtest/gtest.h>

#include "common/status.hpp"

namespace motor::mpi {
namespace {

TEST(GroupTest, ContiguousEnumeratesRanks) {
  Group g = Group::contiguous(4);
  EXPECT_EQ(g.size(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(g.world_rank(i), i);
}

TEST(GroupTest, RankOfFindsMembership) {
  Group g({5, 3, 9});
  EXPECT_EQ(g.rank_of(3), 1);
  EXPECT_EQ(g.rank_of(9), 2);
  EXPECT_FALSE(g.rank_of(4).has_value());
}

TEST(GroupTest, WorldRankOutOfRangeFatals) {
  Group g({1, 2});
  EXPECT_THROW((void)g.world_rank(2), FatalError);
  EXPECT_THROW((void)g.world_rank(-1), FatalError);
}

TEST(GroupTest, InclSelectsInOrder) {
  Group g({10, 11, 12, 13});
  Group sub = g.incl({3, 0});
  EXPECT_EQ(sub.members(), (std::vector<int>{13, 10}));
}

TEST(GroupTest, ExclRemovesRanks) {
  Group g({10, 11, 12, 13});
  Group sub = g.excl({1, 2});
  EXPECT_EQ(sub.members(), (std::vector<int>{10, 13}));
}

TEST(GroupTest, UnionKeepsFirstOrderAndDedups) {
  Group a({1, 2, 3});
  Group b({3, 4});
  EXPECT_EQ(a.set_union(b).members(), (std::vector<int>{1, 2, 3, 4}));
}

TEST(GroupTest, IntersectionPreservesLeftOrder) {
  Group a({5, 1, 7});
  Group b({7, 5});
  EXPECT_EQ(a.set_intersection(b).members(), (std::vector<int>{5, 7}));
}

TEST(GroupTest, EqualityIsOrderSensitive) {
  EXPECT_EQ(Group({1, 2}), Group({1, 2}));
  EXPECT_FALSE(Group({1, 2}) == Group({2, 1}));
}

}  // namespace
}  // namespace motor::mpi
