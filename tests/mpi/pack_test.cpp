#include "mpi/pack.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace motor::mpi {
namespace {

TEST(PackTest, PackSizeScalesWithDatatype) {
  EXPECT_EQ(pack_size(10, Datatype::kByte), 10u);
  EXPECT_EQ(pack_size(10, Datatype::kInt32), 40u);
  EXPECT_EQ(pack_size(3, Datatype::kDouble), 24u);
}

TEST(PackTest, HeterogeneousRoundTrip) {
  std::byte buf[64];
  std::size_t pos = 0;
  const std::int32_t ints[2] = {42, -7};
  const double d = 2.5;
  const std::uint8_t tail = 0xEE;
  ASSERT_EQ(pack(ints, 2, Datatype::kInt32, buf, sizeof buf, pos),
            ErrorCode::kSuccess);
  ASSERT_EQ(pack(&d, 1, Datatype::kDouble, buf, sizeof buf, pos),
            ErrorCode::kSuccess);
  ASSERT_EQ(pack(&tail, 1, Datatype::kUInt8, buf, sizeof buf, pos),
            ErrorCode::kSuccess);
  EXPECT_EQ(pos, 8u + 8u + 1u);

  std::size_t rpos = 0;
  std::int32_t ints_out[2];
  double d_out;
  std::uint8_t tail_out;
  ASSERT_EQ(unpack(buf, pos, rpos, ints_out, 2, Datatype::kInt32),
            ErrorCode::kSuccess);
  ASSERT_EQ(unpack(buf, pos, rpos, &d_out, 1, Datatype::kDouble),
            ErrorCode::kSuccess);
  ASSERT_EQ(unpack(buf, pos, rpos, &tail_out, 1, Datatype::kUInt8),
            ErrorCode::kSuccess);
  EXPECT_EQ(ints_out[0], 42);
  EXPECT_EQ(ints_out[1], -7);
  EXPECT_DOUBLE_EQ(d_out, 2.5);
  EXPECT_EQ(tail_out, 0xEE);
  EXPECT_EQ(rpos, pos);
}

TEST(PackTest, OverflowReportsTruncate) {
  std::byte buf[4];
  std::size_t pos = 0;
  const std::int64_t v = 1;
  EXPECT_EQ(pack(&v, 1, Datatype::kInt64, buf, sizeof buf, pos),
            ErrorCode::kTruncate);
  EXPECT_EQ(pos, 0u);  // position unchanged on failure
}

TEST(PackTest, UnderflowReportsTruncate) {
  std::byte buf[4] = {};
  std::size_t pos = 0;
  std::int64_t v;
  EXPECT_EQ(unpack(buf, sizeof buf, pos, &v, 1, Datatype::kInt64),
            ErrorCode::kTruncate);
}

TEST(PackTest, NullBufferRejected) {
  std::byte buf[8];
  std::size_t pos = 0;
  EXPECT_EQ(pack(nullptr, 1, Datatype::kInt32, buf, sizeof buf, pos),
            ErrorCode::kBufferError);
  EXPECT_EQ(unpack(buf, sizeof buf, pos, nullptr, 1, Datatype::kInt32),
            ErrorCode::kBufferError);
}

TEST(PackTest, ZeroCountIsANoOp) {
  std::byte buf[1];
  std::size_t pos = 0;
  EXPECT_EQ(pack(nullptr, 0, Datatype::kInt32, buf, sizeof buf, pos),
            ErrorCode::kSuccess);
  EXPECT_EQ(pos, 0u);
}

}  // namespace
}  // namespace motor::mpi
