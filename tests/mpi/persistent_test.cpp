#include "mpi/persistent.hpp"

#include <gtest/gtest.h>

#include "mpi/world.hpp"

namespace motor::mpi {
namespace {

TEST(PersistentTest, StartWaitCycleReusesTheRecipe) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    std::int32_t buf = 0;
    constexpr int kRounds = 20;
    if (comm.rank() == 0) {
      PersistentRequest preq = send_init(comm, &buf, sizeof buf, 1, 7);
      for (int i = 0; i < kRounds; ++i) {
        buf = i * 3;
        ASSERT_EQ(start(preq), ErrorCode::kSuccess);
        wait(preq);
        EXPECT_FALSE(preq.active());
      }
    } else {
      PersistentRequest preq = recv_init(comm, &buf, sizeof buf, 0, 7);
      for (int i = 0; i < kRounds; ++i) {
        ASSERT_EQ(start(preq), ErrorCode::kSuccess);
        const MsgStatus st = wait(preq);
        EXPECT_EQ(st.source, 0);
        EXPECT_EQ(buf, i * 3);  // non-overtaking: rounds arrive in order
      }
    }
  });
}

TEST(PersistentTest, DoubleStartRejected) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    std::int32_t buf = 0;
    if (comm.rank() == 0) {
      // An unmatched recv stays active; a second start must fail.
      PersistentRequest preq = recv_init(comm, &buf, sizeof buf, 1, 0);
      ASSERT_EQ(start(preq), ErrorCode::kSuccess);
      EXPECT_EQ(start(preq), ErrorCode::kPending);
      cancel(comm, preq.current());
      wait(preq);
    }
  });
}

TEST(PersistentTest, InvalidRecipeRejected) {
  PersistentRequest empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_EQ(start(empty), ErrorCode::kRequestError);
}

TEST(PersistentTest, StartallFiresHaloPattern) {
  // The canonical persistent use: a fixed halo exchange started per
  // iteration (MPI_Startall).
  World world(3);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    const int n = comm.size();
    const int rank = comm.rank();
    const int left = (rank - 1 + n) % n;
    const int right = (rank + 1) % n;

    std::int32_t send_left = 0, send_right = 0, from_left = -1,
                 from_right = -1;
    PersistentRequest pattern[4] = {
        send_init(comm, &send_left, sizeof send_left, left, 1),
        send_init(comm, &send_right, sizeof send_right, right, 2),
        recv_init(comm, &from_right, sizeof from_right, right, 1),
        recv_init(comm, &from_left, sizeof from_left, left, 2),
    };

    for (int step = 0; step < 5; ++step) {
      send_left = rank * 100 + step;
      send_right = rank * 100 + step + 50;
      ASSERT_EQ(startall(pattern), ErrorCode::kSuccess);
      for (auto& p : pattern) wait(p);
      EXPECT_EQ(from_right, right * 100 + step);       // right's send_left
      EXPECT_EQ(from_left, left * 100 + step + 50);    // left's send_right
    }
  });
}

TEST(PersistentTest, SsendInitCompletesOnMatch) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    std::int32_t buf = 5;
    if (comm.rank() == 0) {
      PersistentRequest preq = ssend_init(comm, &buf, sizeof buf, 1, 0);
      ASSERT_EQ(start(preq), ErrorCode::kSuccess);
      wait(preq);  // blocks until rank 1 matched
    } else {
      std::int32_t got = 0;
      ASSERT_EQ(recv(comm, &got, sizeof got, 0, 0), ErrorCode::kSuccess);
      EXPECT_EQ(got, 5);
    }
  });
}

}  // namespace
}  // namespace motor::mpi
