#include "mpi/pt2pt.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/prng.hpp"
#include "mpi/world.hpp"

namespace motor::mpi {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint64_t seed) {
  Prng prng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(prng.next_u64());
  return v;
}

TEST(Pt2PtTest, BlockingSendRecvSmall) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    const auto data = pattern(64, 1);
    if (comm.rank() == 0) {
      EXPECT_EQ(send(comm, data.data(), data.size(), 1, 7),
                ErrorCode::kSuccess);
    } else {
      std::vector<std::uint8_t> buf(64);
      MsgStatus st;
      EXPECT_EQ(recv(comm, buf.data(), buf.size(), 0, 7, &st),
                ErrorCode::kSuccess);
      EXPECT_EQ(buf, data);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.count_bytes, 64u);
    }
  });
}

class Pt2PtSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Pt2PtSizeTest, RoundTripAcrossEagerAndRendezvous) {
  const std::size_t n = GetParam();
  World world(2);
  world.run([n](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    const auto data = pattern(n, n);
    if (comm.rank() == 0) {
      ASSERT_EQ(send(comm, data.data(), n, 1, 3), ErrorCode::kSuccess);
      std::vector<std::uint8_t> echo(n);
      ASSERT_EQ(recv(comm, echo.data(), n, 1, 4), ErrorCode::kSuccess);
      EXPECT_EQ(echo, data);
    } else {
      std::vector<std::uint8_t> buf(n);
      MsgStatus st;
      ASSERT_EQ(recv(comm, buf.data(), n, 0, 3, &st), ErrorCode::kSuccess);
      EXPECT_EQ(st.count_bytes, n);
      EXPECT_EQ(buf, data);
      ASSERT_EQ(send(comm, buf.data(), n, 0, 4), ErrorCode::kSuccess);
    }
  });
}

// Spans 0 bytes through well past the 64 KiB eager threshold.
INSTANTIATE_TEST_SUITE_P(Sizes, Pt2PtSizeTest,
                         ::testing::Values(0u, 1u, 4u, 4095u, 65536u, 65537u,
                                           262144u, 1048576u));

TEST(Pt2PtTest, NonBlockingIsendIrecv) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    const auto data = pattern(1000, 2);
    if (comm.rank() == 0) {
      Request req = isend(comm, data.data(), data.size(), 1, 0);
      ASSERT_TRUE(req);
      wait(comm, req);
      EXPECT_TRUE(req->is_complete());
    } else {
      std::vector<std::uint8_t> buf(1000);
      Request req = irecv(comm, buf.data(), buf.size(), 0, 0);
      ASSERT_TRUE(req);
      MsgStatus st = wait(comm, req);
      EXPECT_EQ(st.count_bytes, 1000u);
      EXPECT_EQ(buf, data);
    }
  });
}

TEST(Pt2PtTest, MessageOrderIsNonOvertaking) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    constexpr int kMessages = 50;
    if (comm.rank() == 0) {
      for (std::int32_t i = 0; i < kMessages; ++i) {
        ASSERT_EQ(send(comm, &i, sizeof i, 1, 5), ErrorCode::kSuccess);
      }
    } else {
      for (std::int32_t i = 0; i < kMessages; ++i) {
        std::int32_t got = -1;
        ASSERT_EQ(recv(comm, &got, sizeof got, 0, 5), ErrorCode::kSuccess);
        EXPECT_EQ(got, i);  // same (src, tag, comm) => FIFO
      }
    }
  });
}

TEST(Pt2PtTest, TagsSelectMessages) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    if (comm.rank() == 0) {
      std::int32_t a = 111, b = 222;
      ASSERT_EQ(send(comm, &a, sizeof a, 1, 10), ErrorCode::kSuccess);
      ASSERT_EQ(send(comm, &b, sizeof b, 1, 20), ErrorCode::kSuccess);
    } else {
      std::int32_t got = 0;
      // Receive the tag-20 message first even though it was sent second.
      ASSERT_EQ(recv(comm, &got, sizeof got, 0, 20), ErrorCode::kSuccess);
      EXPECT_EQ(got, 222);
      ASSERT_EQ(recv(comm, &got, sizeof got, 0, 10), ErrorCode::kSuccess);
      EXPECT_EQ(got, 111);
    }
  });
}

TEST(Pt2PtTest, WildcardSourceAndTag) {
  World world(3);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    if (comm.rank() != 0) {
      const std::int32_t v = comm.rank() * 100;
      ASSERT_EQ(send(comm, &v, sizeof v, 0, comm.rank()), ErrorCode::kSuccess);
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        std::int32_t got = 0;
        MsgStatus st;
        ASSERT_EQ(recv(comm, &got, sizeof got, kAnySource, kAnyTag, &st),
                  ErrorCode::kSuccess);
        EXPECT_EQ(got, st.source * 100);
        EXPECT_EQ(st.tag, st.source);
        sum += got;
      }
      EXPECT_EQ(sum, 300);
    }
  });
}

TEST(Pt2PtTest, SsendCompletesOnlyAfterMatch) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    if (comm.rank() == 0) {
      std::int32_t v = 9;
      Request req = issend(comm, &v, sizeof v, 1, 0);
      // Drive progress a while: must NOT complete before the peer posts.
      for (int i = 0; i < 50; ++i) comm.device().progress();
      EXPECT_FALSE(req->is_complete());
      // Unblock the peer, then wait for the ssend.
      std::int32_t go = 1;
      ASSERT_EQ(send(comm, &go, sizeof go, 1, 1), ErrorCode::kSuccess);
      wait(comm, req);
      EXPECT_TRUE(req->is_complete());
    } else {
      std::int32_t go = 0;
      ASSERT_EQ(recv(comm, &go, sizeof go, 0, 1), ErrorCode::kSuccess);
      std::int32_t v = 0;
      ASSERT_EQ(recv(comm, &v, sizeof v, 0, 0), ErrorCode::kSuccess);
      EXPECT_EQ(v, 9);
    }
  });
}

TEST(Pt2PtTest, TruncationReportsError) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    const auto data = pattern(128, 3);
    if (comm.rank() == 0) {
      ASSERT_EQ(send(comm, data.data(), data.size(), 1, 0),
                ErrorCode::kSuccess);
    } else {
      std::vector<std::uint8_t> buf(32);
      MsgStatus st;
      EXPECT_EQ(recv(comm, buf.data(), buf.size(), 0, 0, &st),
                ErrorCode::kTruncate);
      EXPECT_EQ(st.count_bytes, 32u);
      EXPECT_TRUE(std::equal(buf.begin(), buf.end(), data.begin()));
    }
  });
}

TEST(Pt2PtTest, SendRecvExchanges) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    const std::int32_t mine = comm.rank() + 1;
    std::int32_t theirs = 0;
    const int peer = 1 - comm.rank();
    ASSERT_EQ(sendrecv(comm, &mine, sizeof mine, peer, 0, &theirs,
                       sizeof theirs, peer, 0),
              ErrorCode::kSuccess);
    EXPECT_EQ(theirs, (1 - comm.rank()) + 1);
  });
}

TEST(Pt2PtTest, SendToSelf) {
  World world(1);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    std::int32_t v = 77, got = 0;
    Request r = irecv(comm, &got, sizeof got, 0, 0);
    ASSERT_EQ(send(comm, &v, sizeof v, 0, 0), ErrorCode::kSuccess);
    wait(comm, r);
    EXPECT_EQ(got, 77);
  });
}

TEST(Pt2PtTest, ProbeSeesEnvelopeWithoutConsuming) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    if (comm.rank() == 0) {
      const auto data = pattern(48, 4);
      ASSERT_EQ(send(comm, data.data(), data.size(), 1, 13),
                ErrorCode::kSuccess);
    } else {
      MsgStatus st = probe(comm, 0, 13);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 13);
      EXPECT_EQ(st.count_bytes, 48u);
      // Message still receivable after probe.
      std::vector<std::uint8_t> buf(st.count_bytes);
      ASSERT_EQ(recv(comm, buf.data(), buf.size(), 0, 13),
                ErrorCode::kSuccess);
      EXPECT_EQ(buf, pattern(48, 4));
    }
  });
}

TEST(Pt2PtTest, IprobeReturnsFalseWhenNothingPending) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    EXPECT_FALSE(iprobe(comm, 1 - comm.rank(), 99));
  });
}

TEST(Pt2PtTest, CancelUnmatchedRecv) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    if (comm.rank() == 0) {
      std::int32_t buf = 0;
      Request req = irecv(comm, &buf, sizeof buf, 1, 42);
      cancel(comm, req);
      EXPECT_TRUE(req->is_complete());
      EXPECT_TRUE(req->cancelled);
      EXPECT_EQ(comm.device().posted_recv_count(), 0u);
    }
  });
}

TEST(Pt2PtTest, ValidationRejectsBadArguments) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    std::int32_t v = 0;
    EXPECT_EQ(isend(comm, &v, sizeof v, 5, 0), nullptr);      // bad rank
    EXPECT_EQ(isend(comm, &v, sizeof v, 0, -3), nullptr);     // bad tag
    EXPECT_EQ(isend(comm, nullptr, 4, 0, 0), nullptr);        // null buffer
    EXPECT_EQ(irecv(comm, &v, sizeof v, -7, 0), nullptr);     // bad wildcard
  });
}

TEST(Pt2PtTest, ManyOutstandingRequests) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    constexpr int kN = 64;
    std::vector<std::vector<std::uint8_t>> bufs(kN);
    std::vector<Request> reqs;
    if (comm.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        bufs[i] = pattern(200 + static_cast<std::size_t>(i), i);
        reqs.push_back(isend(comm, bufs[i].data(), bufs[i].size(), 1, i));
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        bufs[i].resize(200 + static_cast<std::size_t>(i));
        reqs.push_back(irecv(comm, bufs[i].data(), bufs[i].size(), 0, i));
      }
    }
    waitall(comm, reqs);
    if (comm.rank() == 1) {
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(bufs[i], pattern(200 + static_cast<std::size_t>(i), i));
      }
    }
  });
}

TEST(Pt2PtTest, UnexpectedMessagesQueueUntilPosted) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    if (comm.rank() == 0) {
      for (std::int32_t i = 0; i < 5; ++i) {
        ASSERT_EQ(send(comm, &i, sizeof i, 1, i), ErrorCode::kSuccess);
      }
      std::int32_t done = 0;
      ASSERT_EQ(recv(comm, &done, sizeof done, 1, 100), ErrorCode::kSuccess);
    } else {
      // Let everything arrive unexpectedly before posting any receive.
      MsgStatus st;
      while (!iprobe(comm, 0, 4, &st)) pal::Thread::yield();
      EXPECT_GE(comm.device().unexpected_count(), 1u);
      for (std::int32_t i = 4; i >= 0; --i) {  // reverse order by tag
        std::int32_t got = -1;
        ASSERT_EQ(recv(comm, &got, sizeof got, 0, i), ErrorCode::kSuccess);
        EXPECT_EQ(got, i);
      }
      std::int32_t done = 1;
      ASSERT_EQ(send(comm, &done, sizeof done, 0, 100), ErrorCode::kSuccess);
    }
  });
}

}  // namespace
}  // namespace motor::mpi
