#include <gtest/gtest.h>

#include <atomic>

#include "mpi/collectives.hpp"
#include "mpi/pt2pt.hpp"
#include "mpi/world.hpp"

namespace motor::mpi {
namespace {

TEST(SpawnTest, ParentsAndChildrenExchangeOverIntercomm) {
  World world(2);
  std::atomic<int> child_runs{0};

  world.run([&child_runs](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    EXPECT_TRUE(ctx.parent().is_null());  // initial ranks have no parent

    Comm inter = spawn(comm, /*root=*/0, /*n_children=*/2,
                       [&child_runs](RankCtx& child) {
                         ++child_runs;
                         Comm& cw = child.comm_world();
                         EXPECT_EQ(cw.size(), 2);
                         Comm& up = child.parent();
                         ASSERT_FALSE(up.is_null());
                         EXPECT_TRUE(up.is_inter());
                         EXPECT_EQ(up.remote_size(), 2);

                         // Child i sends its rank to parent i.
                         const std::int32_t v = cw.rank() * 11;
                         ASSERT_EQ(send(up, &v, sizeof v, cw.rank(), 0),
                                   ErrorCode::kSuccess);
                       });
    ASSERT_TRUE(inter.is_inter());
    EXPECT_EQ(inter.size(), 2);
    EXPECT_EQ(inter.remote_size(), 2);

    std::int32_t got = -1;
    ASSERT_EQ(recv(inter, &got, sizeof got, comm.rank(), 0),
              ErrorCode::kSuccess);
    EXPECT_EQ(got, comm.rank() * 11);
  });
  EXPECT_EQ(child_runs.load(), 2);
}

TEST(SpawnTest, IntercommMergeFormsBigIntracomm) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    Comm inter = spawn(comm, 0, 2, [](RankCtx& child) {
      Comm merged = intercomm_merge(child.parent(), /*high=*/true);
      EXPECT_EQ(merged.size(), 4);
      // Children are ordered after parents.
      EXPECT_EQ(merged.rank(), 2 + child.comm_world().rank());
      std::int32_t total = 0;
      const std::int32_t mine = merged.rank();
      ASSERT_EQ(allreduce(merged, &mine, &total, 1, Datatype::kInt32,
                          ReduceOp::kSum),
                ErrorCode::kSuccess);
      EXPECT_EQ(total, 0 + 1 + 2 + 3);
    });
    Comm merged = intercomm_merge(inter, /*high=*/false);
    EXPECT_EQ(merged.size(), 4);
    EXPECT_EQ(merged.rank(), comm.rank());
    std::int32_t total = 0;
    const std::int32_t mine = merged.rank();
    ASSERT_EQ(allreduce(merged, &mine, &total, 1, Datatype::kInt32,
                        ReduceOp::kSum),
              ErrorCode::kSuccess);
    EXPECT_EQ(total, 6);
  });
}

TEST(SpawnTest, FabricGrowsByChildCount) {
  World world(2);
  world.run([](RankCtx& ctx) {
    Comm& comm = ctx.comm_world();
    spawn(comm, 0, 3, [](RankCtx& child) {
      EXPECT_GE(child.world_rank(), 2);
      EXPECT_EQ(child.comm_world().size(), 3);
    });
    barrier(comm);
    EXPECT_EQ(ctx.world().fabric().size(), 5);
  });
}

}  // namespace
}  // namespace motor::mpi
