#include "pal/clock.hpp"

#include <gtest/gtest.h>

namespace motor::pal {
namespace {

TEST(ClockTest, MonotonicNeverGoesBackwards) {
  std::uint64_t prev = monotonic_ns();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = monotonic_ns();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(ClockTest, StopwatchMeasuresSpin) {
  Stopwatch sw;
  spin_for_ns(1'000'000);  // 1 ms
  const auto elapsed = sw.elapsed_ns();
  EXPECT_GE(elapsed, 900'000u);      // at least ~the requested spin
  EXPECT_LT(elapsed, 200'000'000u);  // sanity upper bound (scheduler noise)
}

TEST(ClockTest, StopwatchRestartsCleanly) {
  Stopwatch sw;
  spin_for_ns(500'000);
  sw.restart();
  EXPECT_LT(sw.elapsed_ns(), 400'000u);
}

TEST(ClockTest, WtimeTracksMonotonic) {
  const double a = wtime_us();
  spin_for_ns(200'000);
  const double b = wtime_us();
  EXPECT_GT(b, a);
}

}  // namespace
}  // namespace motor::pal
