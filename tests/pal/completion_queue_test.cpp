#include "pal/completion_queue.hpp"

#include <gtest/gtest.h>

#include <thread>

using namespace std::chrono_literals;

namespace motor::pal {
namespace {

TEST(CompletionQueueTest, PollEmptyReturnsNothing) {
  CompletionQueue cq;
  EXPECT_FALSE(cq.poll().has_value());
  EXPECT_EQ(cq.depth(), 0u);
}

TEST(CompletionQueueTest, FifoOrder) {
  CompletionQueue cq;
  cq.post({.key = 1, .bytes = 10, .user_data = 100});
  cq.post({.key = 2, .bytes = 20, .user_data = 200});
  EXPECT_EQ(cq.depth(), 2u);

  auto a = cq.poll();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->key, 1u);
  EXPECT_EQ(a->bytes, 10u);
  auto b = cq.poll();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->user_data, 200u);
  EXPECT_FALSE(cq.poll().has_value());
}

TEST(CompletionQueueTest, WaitTimesOut) {
  CompletionQueue cq;
  EXPECT_FALSE(cq.wait(10ms).has_value());
}

TEST(CompletionQueueTest, WaitWakesOnPost) {
  CompletionQueue cq;
  // No ordering shim needed: wait() returns a queued completion whether
  // the post lands before or after the wait begins.
  std::thread t([&] { cq.post({.key = 7, .bytes = 0, .user_data = 0}); });
  auto c = cq.wait(2s);
  t.join();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->key, 7u);
}

}  // namespace
}  // namespace motor::pal
