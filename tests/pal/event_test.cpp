#include "pal/event.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace std::chrono_literals;

namespace motor::pal {
namespace {

TEST(EventTest, AutoResetConsumesSignal) {
  Event ev(Event::ResetMode::kAuto);
  ev.set();
  EXPECT_TRUE(ev.poll());
  EXPECT_FALSE(ev.poll());
}

TEST(EventTest, ManualResetStaysSignalled) {
  Event ev(Event::ResetMode::kManual);
  ev.set();
  EXPECT_TRUE(ev.poll());
  EXPECT_TRUE(ev.poll());
  ev.reset();
  EXPECT_FALSE(ev.poll());
}

TEST(EventTest, InitiallySetIsVisible) {
  Event ev(Event::ResetMode::kAuto, /*initially_set=*/true);
  EXPECT_TRUE(ev.poll());
}

TEST(EventTest, TimedWaitTimesOut) {
  Event ev;
  EXPECT_FALSE(ev.timed_wait(10ms));
}

TEST(EventTest, WaitWakesOnCrossThreadSet) {
  Event ev;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    ev.wait();
    woke = true;
  });
  // `woke` cannot flip before set(): wait() can only return after it.
  // No sleep needed to make this race-free.
  EXPECT_FALSE(woke.load());
  ev.set();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(EventTest, ManualSetWakesAllWaiters) {
  Event ev(Event::ResetMode::kManual);
  std::atomic<int> woke{0};
  std::thread a([&] { ev.wait(); ++woke; });
  std::thread b([&] { ev.wait(); ++woke; });
  // Manual-reset stays signalled: waiters that arrive after set() pass
  // straight through, so no delay is needed to line them up.
  ev.set();
  a.join();
  b.join();
  EXPECT_EQ(woke.load(), 2);
}

}  // namespace
}  // namespace motor::pal
