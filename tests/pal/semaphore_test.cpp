#include "pal/semaphore.hpp"

#include <gtest/gtest.h>

#include <thread>

using namespace std::chrono_literals;

namespace motor::pal {
namespace {

TEST(SemaphoreTest, InitialCountIsAcquirable) {
  Semaphore sem(2);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
}

TEST(SemaphoreTest, ReleaseRestoresCount) {
  Semaphore sem(0);
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
}

TEST(SemaphoreTest, ReleaseManyWakesMany) {
  Semaphore sem(0);
  sem.release(3);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
}

TEST(SemaphoreTest, TimedAcquireTimesOut) {
  Semaphore sem(0);
  EXPECT_FALSE(sem.timed_acquire(10ms));
}

TEST(SemaphoreTest, AcquireBlocksUntilRelease) {
  Semaphore sem(0);
  // The release may land before or after acquire() blocks; either order
  // must complete without a deadlock, so no delay is needed.
  std::thread t([&] { sem.release(); });
  sem.acquire();  // must not deadlock
  t.join();
  EXPECT_FALSE(sem.try_acquire());
}

}  // namespace
}  // namespace motor::pal
