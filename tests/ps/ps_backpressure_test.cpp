// Back-pressure and convergence suite.
//
// StalledShardBoundsClientQueue: freeze the server's apply loop and keep
// pushing. The credit window must (a) make the client block (credit_waits
// observed) and (b) clamp worker-side queue memory to
// window_batches * batch_bytes + one open coalescer — far below the bytes
// pushed — then drain completely once the shard is released.
//
// InterleavedPushesConvergeToSerialReference: seeded property test. N
// clients push interleaved random integer-valued deltas through
// coalescing, batching, forwarding and credit stalls; the sharded table
// must finish bit-equal to a serial replay of the same workloads
// (integer-valued f32 addition is exact and commutative, so any
// interleaving must produce the same floats).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "common/prng.hpp"
#include "motor/motor_runtime.hpp"
#include "pal/event.hpp"
#include "pal/thread.hpp"
#include "ps/ps.hpp"

namespace motor::ps {
namespace {

mp::MotorWorldConfig world_config(int ranks) {
  mp::MotorWorldConfig c;
  c.ranks = ranks;
  c.vm.profile = vm::RuntimeProfile::uncosted();
  c.vm.heap.young_bytes = 512 * 1024;
  return c;
}

TEST(PsBackpressureTest, StalledShardBoundsClientQueue) {
  // Ranks share the process, so the test coordinates the stall through
  // shared native state.
  pal::Event release(pal::Event::ResetMode::kManual);
  std::atomic<bool> server_stalled{false};
  run_motor_world(world_config(2), [&](mp::MotorContext& ctx) {
    PsConfig pc;
    pc.servers = 1;
    pc.flush_records = 8;
    pc.flush_bytes = 1 << 20;  // count-triggered flushes only
    pc.flush_deadline_ns = 0;
    pc.window_batches = 2;
    pc.serve_timeout_ns = 60ull * 1000 * 1000 * 1000;
    pc.op_timeout_ns = 60ull * 1000 * 1000 * 1000;
    if (ctx.rank() == 0) {
      pc.apply_gate = [&] {
        server_stalled.store(true, std::memory_order_release);
        release.wait();  // manual-reset: free forever once set
      };
      PsNode node(ctx, pc);
      ASSERT_TRUE(node.server().Serve().is_ok());
      std::vector<float> v;
      ASSERT_TRUE(node.server().Lookup(3, &v));
      ASSERT_EQ(v.size(), 16u);
      for (float x : v) EXPECT_EQ(x, 2000.0f);  // every push arrived
      return;
    }
    PsNode node(ctx, pc);
    PsClient& cl = node.client();
    // Release the shard only after the stall demonstrably produced
    // back-pressure (a blocked flush), so the bound is actually exercised.
    std::thread releaser([&] {
      while (!server_stalled.load(std::memory_order_acquire) ||
             cl.stats().credit_waits == 0) {
        pal::Thread::yield();
      }
      // credit_waits > 0 proves the window closed while the shard was
      // frozen — the bound is already being exercised; release now.
      release.set();
    });
    const std::vector<float> unit(16, 1.0f);  // 64-byte payload
    std::uint64_t peak = 0;
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(cl.Push(3, unit).is_ok());
      peak = std::max(peak, cl.queued_bytes());
    }
    ASSERT_TRUE(cl.Flush().is_ok());
    releaser.join();
    const PsClientStats st = cl.stats();
    EXPECT_GT(st.credit_waits, 0u) << "the window never closed";
    // 2000 pushes x 64B payload ~ 125 KiB entered the client, but queue
    // memory must stay at window (2) + 1 open batch of ~8 records each.
    const std::uint64_t batch_bytes =
        kBatchHeaderBytes + 8 * (1 + 8 + 4 + 64);
    const std::uint64_t bound = (2 + 1) * batch_bytes;
    EXPECT_LE(peak, 2 * bound) << "queue memory not bounded by the window";
    EXPECT_LE(st.peak_queued_bytes, 2 * bound);
    EXPECT_EQ(cl.queued_bytes(), 0u) << "Flush must fully drain the queue";
    ASSERT_TRUE(cl.Close().is_ok());
  });
}

constexpr std::uint64_t kSeed = 0xC0FFEE5EED;
constexpr int kKeys = 24;
constexpr int kOps = 400;
constexpr int kLen = 8;

/// The client workload, as a pure function of the rank: op i pushes an
/// integer-valued delta vector into a pseudo-random key.
void replay_workload(int rank, std::map<std::uint64_t,
                                        std::vector<float>>* table) {
  Prng gen(kSeed ^ static_cast<std::uint64_t>(rank));
  for (int i = 0; i < kOps; ++i) {
    const std::uint64_t key = gen.next_below(kKeys);
    auto& acc = (*table)[key];
    acc.resize(kLen, 0.0f);
    for (int j = 0; j < kLen; ++j) {
      acc[static_cast<std::size_t>(j)] +=
          static_cast<float>(gen.next_in(-8, 8));
    }
  }
}

TEST(PsBackpressureTest, InterleavedPushesConvergeToSerialReference) {
  run_motor_world(world_config(4), [](mp::MotorContext& ctx) {
    PsConfig pc;
    pc.servers = 2;
    pc.flush_records = 8;
    pc.flush_deadline_ns = 200'000;
    pc.window_batches = 3;
    pc.serve_timeout_ns = 60ull * 1000 * 1000 * 1000;
    pc.op_timeout_ns = 60ull * 1000 * 1000 * 1000;
    PsNode node(ctx, pc);
    if (node.is_server()) {
      ASSERT_TRUE(node.server().Serve().is_ok());
      // Serial reference: both workloads replayed client-after-client.
      std::map<std::uint64_t, std::vector<float>> expected;
      replay_workload(2, &expected);
      replay_workload(3, &expected);
      for (const auto& [key, want] : expected) {
        if (shard_of(key, pc.servers) != ctx.rank()) continue;
        std::vector<float> got;
        ASSERT_TRUE(node.server().Lookup(key, &got)) << "key " << key;
        ASSERT_EQ(got.size(), want.size());
        for (int j = 0; j < kLen; ++j) {
          EXPECT_EQ(got[static_cast<std::size_t>(j)],
                    want[static_cast<std::size_t>(j)])
              << "key " << key << " lane " << j;
        }
      }
      return;
    }
    PsClient& cl = node.client();
    Prng gen(kSeed ^ static_cast<std::uint64_t>(ctx.rank()));
    std::vector<float> delta(kLen);
    for (int i = 0; i < kOps; ++i) {
      const std::uint64_t key = gen.next_below(kKeys);
      for (int j = 0; j < kLen; ++j) {
        delta[static_cast<std::size_t>(j)] =
            static_cast<float>(gen.next_in(-8, 8));
      }
      ASSERT_TRUE(cl.Push(key, delta).is_ok());
      if (i % 97 == 0) {
        std::vector<float> got;
        ASSERT_TRUE(cl.Pull(key, &got).is_ok());
        ASSERT_EQ(got.size(), static_cast<std::size_t>(kLen));
      }
    }
    ASSERT_TRUE(cl.Close().is_ok());
  });
}

}  // namespace
}  // namespace motor::ps
