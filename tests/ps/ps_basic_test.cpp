// Parameter-server functional suite: push/pull round trips, managed
// object entries, cross-shard forwarding (route-hook misdirection), and
// the shared-buffer-pool steady-state guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "motor/motor_runtime.hpp"
#include "ps/ps.hpp"

namespace motor::ps {
namespace {

mp::MotorWorldConfig world_config(int ranks) {
  mp::MotorWorldConfig c;
  c.ranks = ranks;
  c.vm.profile = vm::RuntimeProfile::uncosted();
  c.vm.heap.young_bytes = 512 * 1024;
  return c;
}

PsConfig base_config(int servers) {
  PsConfig c;
  c.servers = servers;
  c.flush_records = 16;
  c.flush_bytes = 4096;
  c.flush_deadline_ns = 200'000;
  c.window_batches = 4;
  // Failure hygiene: a broken assertion on one rank must fail the test,
  // not hang the suite on a peer waiting forever.
  c.serve_timeout_ns = 30ull * 1000 * 1000 * 1000;
  c.op_timeout_ns = 30ull * 1000 * 1000 * 1000;
  return c;
}

TEST(PsBasicTest, PushPullRoundTrip) {
  run_motor_world(world_config(3), [](mp::MotorContext& ctx) {
    PsNode node(ctx, base_config(1));
    if (node.is_server()) {
      ASSERT_TRUE(node.server().Serve().is_ok());
      // Both clients pushed 50 unit deltas into the shared key.
      std::vector<float> v;
      ASSERT_TRUE(node.server().Lookup(7, &v));
      ASSERT_EQ(v.size(), 8u);
      for (float x : v) EXPECT_EQ(x, 100.0f);
      EXPECT_EQ(node.server().stats().pushes_applied, 106u);
      EXPECT_GT(node.server().stats().credits_returned, 0u);
      return;
    }
    PsClient& cl = node.client();
    const std::vector<float> unit(8, 1.0f);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(cl.Push(7, unit).is_ok());
    }
    ASSERT_TRUE(cl.Flush().is_ok());

    // A private key: accumulate three deltas, read the sum back.
    const std::uint64_t mine = 100 + static_cast<std::uint64_t>(ctx.rank());
    std::vector<float> delta(4);
    for (int k = 0; k < 4; ++k) {
      delta[static_cast<std::size_t>(k)] =
          static_cast<float>(ctx.rank() * 10 + k);
    }
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(cl.Push(mine, delta).is_ok());
    std::vector<float> got;
    ASSERT_TRUE(cl.Pull(mine, &got).is_ok());
    ASSERT_EQ(got.size(), 4u);
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(got[static_cast<std::size_t>(k)],
                3.0f * static_cast<float>(ctx.rank() * 10 + k));
    }
    EXPECT_GT(cl.stats().batches_flushed, 0u);
    EXPECT_GT(cl.stats().records_flushed, cl.stats().batches_flushed)
        << "coalescing should pack multiple records per batch";
    ASSERT_TRUE(cl.Close().is_ok());
  });
}

TEST(PsBasicTest, PullMissingKeyFailsCleanly) {
  run_motor_world(world_config(2), [](mp::MotorContext& ctx) {
    PsNode node(ctx, base_config(1));
    if (node.is_server()) {
      ASSERT_TRUE(node.server().Serve().is_ok());
      EXPECT_EQ(node.server().stats().errors_replied, 1u);
      return;
    }
    std::vector<float> got;
    Status st = node.client().Pull(999, &got);
    EXPECT_FALSE(st.is_ok());
    EXPECT_EQ(st.code(), ErrorCode::kRequestError);
    // The error must not poison the session.
    ASSERT_TRUE(node.client().Push(1, std::vector<float>(2, 3.0f)).is_ok());
    ASSERT_TRUE(node.client().Pull(1, &got).is_ok());
    EXPECT_EQ(got, std::vector<float>(2, 3.0f));
    ASSERT_TRUE(node.client().Close().is_ok());
  });
}

TEST(PsBasicTest, ObjectPutGetRoundTrip) {
  run_motor_world(world_config(2), [](mp::MotorContext& ctx) {
    // Both VMs define the record type (each rank owns its type system).
    const vm::MethodTable* rec = ctx.vm()
                                     .types()
                                     .define_class("PsRecord")
                                     .transportable()
                                     .field("a", vm::ElementKind::kInt32)
                                     .field("b", vm::ElementKind::kFloat)
                                     .build();
    PsNode node(ctx, base_config(1));
    if (node.is_server()) {
      ASSERT_TRUE(node.server().Serve().is_ok());
      EXPECT_EQ(node.server().stats().object_puts, 1u);
      EXPECT_EQ(node.server().stats().object_gets, 1u);
      return;
    }
    vm::GcRoot obj(ctx.thread(), ctx.vm().new_object(rec));
    vm::set_field<std::int32_t>(obj.get(), rec->field_named("a")->offset(),
                                42);
    vm::set_field<float>(obj.get(), rec->field_named("b")->offset(), 1.5f);
    ASSERT_TRUE(node.client().PutObject(5, obj.get()).is_ok());
    vm::Obj back = nullptr;
    ASSERT_TRUE(node.client().GetObject(5, &back).is_ok());
    ASSERT_NE(back, nullptr);
    EXPECT_EQ(vm::obj_mt(back)->name(), "PsRecord");
    EXPECT_EQ(vm::get_field<std::int32_t>(back,
                                          rec->field_named("a")->offset()),
              42);
    EXPECT_EQ(vm::get_field<float>(back, rec->field_named("b")->offset()),
              1.5f);
    ASSERT_TRUE(node.client().Close().is_ok());
  });
}

TEST(PsBasicTest, MisroutedRecordsForwardToOwningShard) {
  run_motor_world(world_config(4), [](mp::MotorContext& ctx) {
    PsConfig pc = base_config(2);
    // Clients aim EVERYTHING at shard 0; shard 0 must re-pack records
    // owned by shard 1 and shard 1 must answer pulls directly.
    pc.route_hook = [](std::uint64_t) { return 0; };
    PsNode node(ctx, pc);
    if (node.is_server()) {
      ASSERT_TRUE(node.server().Serve().is_ok());
      const PsServerStats& st = node.server().stats();
      if (ctx.rank() == 0) {
        EXPECT_GT(st.records_forwarded, 0u);
        EXPECT_GT(st.forward_batches_sent, 0u);
        EXPECT_EQ(st.forwards_applied, 0u);
      } else {
        EXPECT_GT(st.forwards_applied, 0u);
        EXPECT_GT(st.pulls_served, 0u);  // forwarded pulls answered here
        EXPECT_EQ(st.records_forwarded, 0u);
      }
      return;
    }
    PsClient& cl = node.client();
    // 24 keys scatter over both shards under the true hash.
    for (std::uint64_t key = 0; key < 24; ++key) {
      std::vector<float> delta(4, static_cast<float>(key + 1));
      ASSERT_TRUE(cl.Push(key, delta).is_ok());
      ASSERT_TRUE(cl.Push(key, delta).is_ok());
    }
    for (std::uint64_t key = 0; key < 24; ++key) {
      std::vector<float> got;
      ASSERT_TRUE(cl.Pull(key, &got).is_ok()) << "key " << key;
      ASSERT_EQ(got.size(), 4u);
      // Two clients x two pushes each may interleave, but any prefix is a
      // multiple of the per-push delta.
      const float per_push = static_cast<float>(key + 1);
      const float times = got[0] / per_push;
      EXPECT_GE(times, 2.0f) << "own pushes must be visible after flush";
      EXPECT_LE(times, 4.0f);
      for (float x : got) EXPECT_EQ(x, times * per_push);
    }
    ASSERT_TRUE(cl.Close().is_ok());
  });
}

// Satellite: ONE static pool serves the OO serializer ops and the PS
// coalescer/reply path; in steady state neither allocates. Client-side we
// snapshot created() between warm-up and a 40x larger main phase; the
// server proves recycling dominates (reused >> created) across its whole
// run.
TEST(PsBasicTest, SteadyStateRecyclesPoolBuffersOnly) {
  run_motor_world(world_config(2), [](mp::MotorContext& ctx) {
    PsConfig pc = base_config(1);
    pc.flush_deadline_ns = 0;  // no timing-dependent flushes in the count
    PsNode node(ctx, pc);
    if (node.is_server()) {
      ASSERT_TRUE(node.server().Serve().is_ok());
      mp::BufferPool& pool = node.direct().pool();
      EXPECT_GT(pool.reused(), pool.created())
          << "server reply/apply path must recycle, not allocate";
      return;
    }
    PsClient& cl = node.client();
    const std::vector<float> delta(8, 2.0f);
    std::vector<float> got;
    // Warm-up: populate the pool high-water mark.
    for (int i = 0; i < 64; ++i) ASSERT_TRUE(cl.Push(1, delta).is_ok());
    ASSERT_TRUE(cl.Pull(1, &got).is_ok());
    ASSERT_TRUE(cl.Flush().is_ok());
    mp::BufferPool& pool = node.direct().pool();
    const std::uint64_t created_after_warmup = pool.created();
    for (int round = 0; round < 16; ++round) {
      for (int i = 0; i < 160; ++i) {
        ASSERT_TRUE(cl.Push(1 + static_cast<std::uint64_t>(i % 4), delta)
                        .is_ok());
      }
      ASSERT_TRUE(cl.Pull(2, &got).is_ok());
    }
    ASSERT_TRUE(cl.Flush().is_ok());
    EXPECT_EQ(pool.created(), created_after_warmup)
        << "steady-state pushes/pulls must not allocate new pool buffers";
    EXPECT_GT(pool.reused(), created_after_warmup);
    ASSERT_TRUE(cl.Close().is_ok());
  });
}

}  // namespace
}  // namespace motor::ps
