// Parameter server under transport faults (extends ctest -L fault).
//
// With DeviceConfig::reliability on, drops/corruption/duplication on
// every link must be absorbed: every push applies exactly once, every
// pull completes, and the run is DETERMINISTIC — the table checksum and
// the timing-independent counters are bit-identical across reruns
// (deadline flushing is disabled so wall-clock never shapes the wire
// traffic; the fault schedule is PRNG-driven per link).
//
// With an unrecoverable link (100% drop, finite retries), everything must
// fail CLEANLY: client calls return kCommError, Serve() returns an error
// after its timeout, nothing hangs.
#include <gtest/gtest.h>

#include <mutex>
#include <sstream>
#include <vector>

#include "common/prng.hpp"
#include "motor/motor_runtime.hpp"
#include "mpi/world.hpp"
#include "ps/ps.hpp"
#include "transport/faulty_channel.hpp"

namespace motor::ps {
namespace {

constexpr int kRanks = 3;  // 1 server, 2 clients
constexpr int kOps = 240;
constexpr int kKeys = 16;
constexpr int kLen = 6;

mp::MotorWorldConfig world_config() {
  mp::MotorWorldConfig c;
  c.ranks = kRanks;
  c.vm.profile = vm::RuntimeProfile::uncosted();
  c.vm.heap.young_bytes = 512 * 1024;
  mpi::ReliabilityConfig rc;
  rc.enabled = true;
  rc.retry_timeout_polls = 64;
  rc.retry_timeout_cap_polls = 1024;
  rc.max_retries = 64;  // generous: these scenarios must SUCCEED
  rc.recv_stall_polls = 1 << 20;
  c.world.device.reliability = rc;
  return c;
}

/// Everything a run may deterministically count. Two runs of one
/// scenario must produce equal snapshots. (Timing-shaped quantities —
/// reply grouping, apply cycles, probe misses — are deliberately absent.)
struct Snapshot {
  std::uint64_t table_checksum = 0;
  std::uint64_t table_keys = 0;
  std::uint64_t pushes_applied = 0;
  std::uint64_t pulls_served = 0;
  std::uint64_t batches_applied = 0;
  std::uint64_t credits_returned = 0;
  std::uint64_t client_pushes = 0;
  std::uint64_t client_pulls = 0;
  std::uint64_t client_batches = 0;
  std::uint64_t client_records = 0;

  bool operator==(const Snapshot&) const = default;

  [[nodiscard]] std::string str() const {
    std::ostringstream os;
    os << "checksum=" << table_checksum << " keys=" << table_keys
       << " applied=" << pushes_applied << "/" << batches_applied
       << " pulls=" << pulls_served << " credits=" << credits_returned
       << " client[pushes=" << client_pushes << " pulls=" << client_pulls
       << " batches=" << client_batches << " records=" << client_records
       << "]";
    return os.str();
  }
};

Snapshot run_faulted(std::uint64_t seed, double drop, double bitflip,
                     double duplicate) {
  Snapshot snap;
  std::mutex snap_mu;
  const mp::MotorWorldConfig wc = world_config();
  mp::run_motor_world(
      wc,
      [&](mpi::World& world) {
        for (int i = 0; i < kRanks; ++i) {
          for (int j = 0; j < kRanks; ++j) {
            if (i == j) continue;
            transport::FaultConfig fc;
            fc.seed = seed * 1000003ull +
                      static_cast<std::uint64_t>(i * kRanks + j);
            fc.drop_rate = drop;
            fc.bitflip_rate = bitflip;
            fc.duplicate_rate = duplicate;
            world.fabric().inject_faults(i, j, fc);
          }
        }
      },
      [&](mp::MotorContext& ctx) {
        PsConfig pc;
        pc.servers = 1;
        pc.flush_records = 8;
        pc.flush_deadline_ns = 0;  // determinism: no wall-clock flushes
        pc.window_batches = 4;
        pc.serve_timeout_ns = 60ull * 1000 * 1000 * 1000;
        PsNode node(ctx, pc);
        if (node.is_server()) {
          Status st = node.server().Serve();
          ASSERT_TRUE(st.is_ok()) << st.message();
          std::lock_guard<std::mutex> lk(snap_mu);
          snap.table_checksum = node.server().table_checksum();
          snap.table_keys = node.server().table_size();
          snap.pushes_applied = node.server().stats().pushes_applied;
          snap.pulls_served = node.server().stats().pulls_served;
          snap.batches_applied = node.server().stats().batches_applied;
          snap.credits_returned = node.server().stats().credits_returned;
          return;
        }
        PsClient& cl = node.client();
        Prng gen(seed ^ static_cast<std::uint64_t>(ctx.rank()));
        std::vector<float> delta(kLen);
        for (int i = 0; i < kOps; ++i) {
          const std::uint64_t key = gen.next_below(kKeys);
          for (int j = 0; j < kLen; ++j) {
            delta[static_cast<std::size_t>(j)] =
                static_cast<float>(gen.next_in(-16, 16));
          }
          ASSERT_TRUE(cl.Push(key, delta).is_ok());
          if (i % 60 == 0) {
            std::vector<float> got;
            ASSERT_TRUE(cl.Pull(key, &got).is_ok());
            ASSERT_EQ(got.size(), static_cast<std::size_t>(kLen));
          }
        }
        const Status close_st = cl.Close();
        ASSERT_TRUE(close_st.is_ok())
            << "rank " << ctx.rank() << ": "
            << static_cast<int>(close_st.code()) << " "
            << close_st.message();
        const PsClientStats st = cl.stats();
        std::lock_guard<std::mutex> lk(snap_mu);
        snap.client_pushes += st.pushes;
        snap.client_pulls += st.pulls;
        snap.client_batches += st.batches_flushed;
        snap.client_records += st.records_flushed;
      });
  return snap;
}

struct FaultScenario {
  const char* label;
  std::uint64_t seed;
  double drop, bitflip, duplicate;
};

TEST(PsFaultTest, FaultedLinksRecoverExactlyOnceAndDeterministically) {
  const FaultScenario scenarios[] = {
      {"drops", 11, 0.03, 0.0, 0.0},
      {"corruption", 22, 0.0, 0.03, 0.0},
      {"mixed", 33, 0.02, 0.02, 0.02},
  };
  for (const FaultScenario& sc : scenarios) {
    SCOPED_TRACE(sc.label);
    Snapshot first = run_faulted(sc.seed, sc.drop, sc.bitflip, sc.duplicate);
    if (::testing::Test::HasFatalFailure()) return;
    // Exactly-once application under faults.
    EXPECT_EQ(first.pushes_applied,
              static_cast<std::uint64_t>(2 * kOps));
    EXPECT_EQ(first.client_pushes, static_cast<std::uint64_t>(2 * kOps));
    EXPECT_EQ(first.pulls_served, first.client_pulls);
    EXPECT_EQ(first.credits_returned, first.client_batches);
    EXPECT_GT(first.table_keys, 0u);
    // Bit-identical rerun.
    Snapshot second = run_faulted(sc.seed, sc.drop, sc.bitflip, sc.duplicate);
    if (::testing::Test::HasFatalFailure()) return;
    EXPECT_EQ(first, second) << "first:  " << first.str() << "\nsecond: "
                             << second.str();
  }
}

TEST(PsFaultTest, UnrecoverableLinkFailsCleanlyNeverHangs) {
  mp::MotorWorldConfig wc = world_config();
  wc.ranks = 2;
  wc.world.device.reliability.max_retries = 4;
  wc.world.device.reliability.retry_timeout_polls = 32;
  wc.world.device.reliability.retry_timeout_cap_polls = 128;
  mp::run_motor_world(
      wc,
      [&](mpi::World& world) {
        transport::FaultConfig dead;
        dead.seed = 7;
        dead.drop_rate = 1.0;  // the client->server link eats every frame
        world.fabric().inject_faults(1, 0, dead);
      },
      [&](mp::MotorContext& ctx) {
        PsConfig pc;
        pc.servers = 1;
        pc.flush_records = 4;
        pc.flush_deadline_ns = 0;
        pc.window_batches = 2;
        pc.serve_timeout_ns = 5ull * 1000 * 1000 * 1000;
        PsNode node(ctx, pc);
        if (node.is_server()) {
          Status st = node.server().Serve();
          EXPECT_FALSE(st.is_ok()) << "no client traffic can have arrived";
          return;
        }
        PsClient& cl = node.client();
        const std::vector<float> unit(4, 1.0f);
        Status st = Status::ok();
        for (int i = 0; i < 100000 && st.is_ok(); ++i) {
          st = cl.Push(static_cast<std::uint64_t>(i), unit);
        }
        EXPECT_FALSE(st.is_ok()) << "a dead link must surface an error";
        EXPECT_EQ(st.code(), ErrorCode::kCommError);
        Status closed = cl.Close();
        EXPECT_FALSE(closed.is_ok());
      });
}

}  // namespace
}  // namespace motor::ps
