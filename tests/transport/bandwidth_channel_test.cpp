#include "transport/bandwidth_channel.hpp"

#include <gtest/gtest.h>

#include "pal/clock.hpp"
#include "transport/ring_channel.hpp"

namespace motor::transport {
namespace {

std::unique_ptr<BandwidthChannel> make(std::uint64_t bps,
                                       std::size_t burst = 1024,
                                       std::size_t cap = 1 << 16) {
  return std::make_unique<BandwidthChannel>(
      std::make_unique<RingChannel>(cap), bps, burst);
}

TEST(BandwidthChannelTest, BurstAcceptedImmediately) {
  auto ch = make(1'000'000, /*burst=*/256);
  std::vector<std::byte> data(1000);
  EXPECT_EQ(ch->try_write(data), 256u);  // the bucket's initial burst
}

TEST(BandwidthChannelTest, RefillsOverTime) {
  auto ch = make(1'000, /*burst=*/100);  // 1 KB/s: refill is observable
  std::vector<std::byte> data(100);
  ASSERT_EQ(ch->try_write(data), 100u);
  EXPECT_EQ(ch->try_write(data), 0u);  // drained; ~0 refilled in microseconds

  // ~1 byte refills per millisecond; wait for a few.
  const pal::Stopwatch sw;
  std::size_t total = 0;
  while (total < 5 && sw.elapsed_ns() < 1'000'000'000) {
    total += ch->try_write({data.data(), 5 - total});
  }
  EXPECT_EQ(total, 5u);
}

TEST(BandwidthChannelTest, ThroughputRoughlyMatchesConfig) {
  constexpr std::uint64_t kBps = 50'000'000;  // 50 MB/s
  auto ch = make(kBps, 4096, 1 << 20);
  std::vector<std::byte> chunk(4096);
  std::vector<std::byte> sink(8192);

  const pal::Stopwatch sw;
  std::size_t sent = 0;
  while (sw.elapsed_ns() < 50'000'000) {  // 50 ms
    sent += ch->try_write(chunk);
    ch->try_read(sink);  // drain so the inner ring never backpressures
  }
  const double seconds = sw.elapsed_ns() / 1e9;
  const double observed_bps = static_cast<double>(sent) / seconds;
  EXPECT_GT(observed_bps, kBps * 0.5);
  EXPECT_LT(observed_bps, kBps * 1.5);
}

TEST(BandwidthChannelTest, ReadsAreUnthrottled) {
  auto ch = make(1'000'000'000, 1 << 16);
  std::vector<std::byte> data(1000, std::byte{5});
  ASSERT_EQ(ch->try_write(data), 1000u);
  std::vector<std::byte> out(1000);
  EXPECT_EQ(ch->try_read(out), 1000u);
  EXPECT_EQ(out, data);
}

TEST(BandwidthChannelTest, NameAdvertisesDecoration) {
  EXPECT_EQ(make(1000)->name(), "ring+bw");
}

}  // namespace
}  // namespace motor::transport
