// ChannelConformance: ONE parameterized contract suite for every Channel
// implementation in the tree — the in-process channels (ring, stream,
// loopback), the decorators (latency, bandwidth, faulty), the base-class
// default try_write_v forwarding, and the two genuinely external
// transports (socket over an AF_UNIX pair, shm ring in kBoth loopback).
//
// The contract under test (what the device's partial-commit resume path
// and the reliability layer's frame accounting rely on):
//   * a gathered write commits an EXACT PREFIX of the concatenated parts,
//     even when the cut falls mid-part, and resuming the unaccepted tail
//     completes the sequence byte-identically;
//   * channels with exact back-pressure accept exactly
//     min(total, writable()) — kernel-buffered transports only promise
//     the prefix property, their writable() is advisory;
//   * zero-length operations are no-ops;
//   * close() stops writes immediately but buffered bytes still drain,
//     and only then does at_eof() report;
//   * a healthy channel never reports broken().
//
// Promoted from the short-write suite that previously lived inside
// channel_test.cpp, which covered only the in-process channels.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/prng.hpp"
#include "transport/bandwidth_channel.hpp"
#include "transport/channel.hpp"
#include "transport/faulty_channel.hpp"
#include "transport/latency_channel.hpp"
#include "transport/ring_channel.hpp"
#include "transport/shm_channel.hpp"
#include "transport/socket_channel.hpp"

namespace motor::transport {
namespace {

std::vector<std::byte> make_payload(std::size_t n, std::uint64_t seed) {
  Prng prng(seed);
  std::vector<std::byte> data(n);
  for (auto& b : data) b = static_cast<std::byte>(prng.next_u64());
  return data;
}

// Exercises Channel::try_write_v's default part-by-part forwarding: only
// the five core operations are overridden, everything else inherits.
class MinimalChannel final : public Channel {
 public:
  explicit MinimalChannel(std::size_t cap) : inner_(cap) {}
  std::size_t try_write(ByteSpan bytes) override {
    return inner_.try_write(bytes);
  }
  std::size_t try_read(MutableByteSpan out) override {
    return inner_.try_read(out);
  }
  [[nodiscard]] std::size_t readable() const override {
    return inner_.readable();
  }
  [[nodiscard]] std::size_t writable() const override {
    return inner_.writable();
  }
  void close() override { inner_.close(); }
  [[nodiscard]] bool at_eof() const override { return inner_.at_eof(); }
  [[nodiscard]] std::string name() const override { return "minimal"; }

 private:
  RingChannel inner_;
};

std::string unique_shm_name() {
  static std::atomic<int> counter{0};
  return "/motor_conf_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

struct ConformanceCase {
  const char* name;
  std::unique_ptr<Channel> (*make)(std::size_t cap);
  // accepted == min(total, writable()) holds exactly. Kernel-buffered
  // transports (socket) only promise the prefix property; their
  // writable() is an estimate the device never relies on.
  bool exact_backpressure;
  // writable() can actually reach zero by filling the channel (loopback
  // grows without bound; the saturation test skips it).
  bool saturable;
};

std::unique_ptr<Channel> make_ring_c(std::size_t cap) {
  return make_channel(ChannelKind::kRing, cap);
}
std::unique_ptr<Channel> make_stream_c(std::size_t cap) {
  return make_channel(ChannelKind::kStream, cap);
}
std::unique_ptr<Channel> make_loopback_c(std::size_t cap) {
  return make_channel(ChannelKind::kLoopback, cap);
}
std::unique_ptr<Channel> make_latency_c(std::size_t cap) {
  return std::make_unique<LatencyChannel>(
      make_channel(ChannelKind::kRing, cap), 1 /*ns: readable immediately*/);
}
std::unique_ptr<Channel> make_bandwidth_c(std::size_t cap) {
  // Generous rate and burst: the token bucket must not be the limiter
  // here — these cases check the decorator's mid-part clipping only.
  return std::make_unique<BandwidthChannel>(
      make_channel(ChannelKind::kRing, cap), 4'000'000'000ull, 1 << 20);
}
std::unique_ptr<Channel> make_faulty_c(std::size_t cap) {
  // All fault rates zero: the decorator must be perfectly transparent.
  return std::make_unique<FaultyChannel>(make_channel(ChannelKind::kRing, cap),
                                         FaultConfig{});
}
std::unique_ptr<Channel> make_minimal_c(std::size_t cap) {
  return std::make_unique<MinimalChannel>(cap);
}
std::unique_ptr<Channel> make_socket_c(std::size_t cap) {
  // The kernel clamps SO_SNDBUF to its floor, so tiny caps still leave a
  // few KiB of room — the suite's assertions tolerate that via the
  // exact_backpressure trait.
  return SocketChannel::make_loopback_pair(cap);
}
std::unique_ptr<Channel> make_shm_c(std::size_t cap) {
  return ShmChannel::create(unique_shm_name(), cap, ShmChannel::Role::kBoth);
}

class ChannelConformance : public ::testing::TestWithParam<ConformanceCase> {
 protected:
  std::unique_ptr<Channel> make(std::size_t cap) {
    auto ch = GetParam().make(cap);
    EXPECT_NE(ch, nullptr);
    return ch;
  }
};

std::vector<std::byte> drain_all(Channel& ch, std::size_t expect) {
  std::vector<std::byte> out(expect);
  std::size_t got = 0;
  // LatencyChannel delivers on a (tiny) delay; spin until quiescent.
  for (int spins = 0; got < expect && spins < 1'000'000; ++spins) {
    got += ch.try_read({out.data() + got, expect - got});
  }
  out.resize(got);
  return out;
}

TEST_P(ChannelConformance, MidPartCutIsExactPrefix) {
  // Capacity 128 cuts a 300-byte gather inside the third part (on
  // channels with small enough buffers; kernel-backed ones may take it
  // whole — the prefix and resume clauses hold either way).
  auto ch = make(128);
  const auto payload = make_payload(300, 42);
  const ByteSpan parts[] = {{payload.data(), 7},
                            {payload.data() + 7, 93},
                            {payload.data() + 100, 150},
                            {payload.data() + 250, 50}};

  const std::size_t room = ch->writable();
  const std::size_t accepted = ch->try_write_v(parts);
  if (GetParam().exact_backpressure) {
    EXPECT_EQ(accepted, std::min<std::size_t>(300, room)) << GetParam().name;
  } else {
    EXPECT_LE(accepted, 300u) << GetParam().name;
  }

  const auto wire = drain_all(*ch, accepted);
  ASSERT_EQ(wire.size(), accepted) << GetParam().name;
  EXPECT_TRUE(std::equal(wire.begin(), wire.end(), payload.begin()))
      << GetParam().name << ": accepted bytes are not the logical prefix";

  // Resume the tail until the full sequence has crossed.
  std::size_t off = accepted;
  std::vector<std::byte> rest;
  for (int spins = 0; off < payload.size() && spins < 1'000'000; ++spins) {
    const std::size_t n =
        ch->try_write({payload.data() + off, payload.size() - off});
    off += n;
    const auto chunk = drain_all(*ch, n);
    rest.insert(rest.end(), chunk.begin(), chunk.end());
  }
  ASSERT_EQ(off, payload.size()) << GetParam().name;
  EXPECT_TRUE(std::equal(rest.begin(), rest.end(),
                         payload.begin() + static_cast<long>(accepted)))
      << GetParam().name;
}

TEST_P(ChannelConformance, EmptyAndDegenerateParts) {
  auto ch = make(1024);
  EXPECT_EQ(ch->try_write_v(std::span<const ByteSpan>{}), 0u);

  // Empty parts interleaved with real ones must not disturb the sequence.
  const auto payload = make_payload(96, 9);
  const ByteSpan parts[] = {{payload.data(), 0},
                            {payload.data(), 48},
                            {payload.data() + 48, 0},
                            {payload.data() + 48, 48}};
  EXPECT_EQ(ch->try_write_v(parts), 96u) << GetParam().name;
  const auto wire = drain_all(*ch, 96);
  EXPECT_EQ(wire, payload) << GetParam().name;
}

TEST_P(ChannelConformance, SaturatedChannelAcceptsZero) {
  if (!GetParam().saturable) {
    GTEST_SKIP() << GetParam().name << " grows without bound";
  }
  auto ch = make(64);
  const auto fill = make_payload(64, 13);
  // Saturate by the only authoritative signal: try_write returning 0.
  // (writable() is advisory on kernel-buffered transports.) 16 KiB
  // rounds cover the largest SO_SNDBUF floor a kernel hands back.
  bool full = false;
  for (int i = 0; i < 100'000; ++i) {
    if (ch->try_write(fill) == 0) {
      full = true;
      break;
    }
  }
  ASSERT_TRUE(full) << GetParam().name << " never saturated";
  const ByteSpan parts[] = {{fill.data(), 32}, {fill.data() + 32, 32}};
  EXPECT_EQ(ch->try_write_v(parts), 0u) << GetParam().name;
  EXPECT_EQ(ch->try_write(fill), 0u) << GetParam().name;
}

TEST_P(ChannelConformance, ZeroLengthOpsAreNoOps) {
  auto ch = make(256);
  EXPECT_EQ(ch->try_write(ByteSpan{}), 0u);
  std::byte dummy;
  EXPECT_EQ(ch->try_read({&dummy, 0}), 0u);
  const auto payload = make_payload(16, 7);
  ASSERT_EQ(ch->try_write(payload), payload.size());
  EXPECT_EQ(ch->try_write(ByteSpan{}), 0u);
  EXPECT_EQ(ch->try_read({&dummy, 0}), 0u);
  const auto wire = drain_all(*ch, payload.size());
  EXPECT_EQ(wire, payload) << GetParam().name;
}

TEST_P(ChannelConformance, CloseDrainsBufferedBytesThenReportsEof) {
  auto ch = make(256);
  const auto payload = make_payload(32, 3);
  ASSERT_EQ(ch->try_write(payload), payload.size());
  ch->close();
  EXPECT_EQ(ch->try_write(payload), 0u) << GetParam().name;

  const auto wire = drain_all(*ch, payload.size());
  EXPECT_EQ(wire, payload) << GetParam().name;

  // EOF may take a moment to propagate through a kernel buffer.
  bool eof = false;
  for (int spins = 0; spins < 1'000'000 && !eof; ++spins) {
    eof = ch->at_eof();
  }
  EXPECT_TRUE(eof) << GetParam().name;
  // A clean local close is end-of-stream, never a transport failure.
  EXPECT_FALSE(ch->broken()) << GetParam().name;
}

TEST_P(ChannelConformance, HealthyChannelIsNotBroken) {
  auto ch = make(256);
  EXPECT_FALSE(ch->broken()) << GetParam().name;
  const auto payload = make_payload(64, 21);
  ASSERT_EQ(ch->try_write(payload), payload.size());
  EXPECT_FALSE(ch->broken()) << GetParam().name;
  const auto wire = drain_all(*ch, payload.size());
  EXPECT_EQ(wire, payload);
  EXPECT_FALSE(ch->broken()) << GetParam().name;
}

TEST_P(ChannelConformance, InterleavedWritesAndReadsPreserveSequence) {
  auto ch = make(256);
  Prng prng(99);
  std::vector<std::byte> sent, received;
  std::byte buf[192];
  for (int round = 0; round < 500; ++round) {
    const auto chunk = make_payload(
        static_cast<std::size_t>(prng.next_in(1, 160)), prng.next_u64());
    const std::size_t n = ch->try_write(chunk);
    sent.insert(sent.end(), chunk.begin(),
                chunk.begin() + static_cast<long>(n));
    const std::size_t got = ch->try_read({buf, sizeof buf});
    received.insert(received.end(), buf, buf + got);
  }
  for (int spins = 0; received.size() < sent.size() && spins < 1'000'000;
       ++spins) {
    const std::size_t got = ch->try_read({buf, sizeof buf});
    received.insert(received.end(), buf, buf + got);
  }
  EXPECT_EQ(received, sent) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllChannels, ChannelConformance,
    ::testing::Values(
        ConformanceCase{"ring", make_ring_c, true, true},
        ConformanceCase{"stream", make_stream_c, true, true},
        ConformanceCase{"loopback", make_loopback_c, true, false},
        ConformanceCase{"latency", make_latency_c, true, true},
        ConformanceCase{"bandwidth", make_bandwidth_c, true, true},
        ConformanceCase{"faulty", make_faulty_c, true, true},
        ConformanceCase{"default_impl", make_minimal_c, true, true},
        ConformanceCase{"socket", make_socket_c, false, true},
        ConformanceCase{"shm", make_shm_c, true, true}),
    [](const ::testing::TestParamInfo<ConformanceCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace motor::transport
