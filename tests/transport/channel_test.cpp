#include "transport/channel.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "common/prng.hpp"
#include "transport/bandwidth_channel.hpp"
#include "transport/latency_channel.hpp"
#include "transport/ring_channel.hpp"

namespace motor::transport {
namespace {

std::vector<std::byte> make_payload(std::size_t n, std::uint64_t seed) {
  Prng prng(seed);
  std::vector<std::byte> data(n);
  for (auto& b : data) b = static_cast<std::byte>(prng.next_u64());
  return data;
}

class ChannelKindTest : public ::testing::TestWithParam<ChannelKind> {
 protected:
  std::unique_ptr<Channel> make(std::size_t cap = 1024) {
    return make_channel(GetParam(), cap);
  }
};

TEST_P(ChannelKindTest, StartsEmpty) {
  auto ch = make();
  EXPECT_EQ(ch->readable(), 0u);
  EXPECT_FALSE(ch->at_eof());
  std::byte buf[8];
  EXPECT_EQ(ch->try_read({buf, sizeof buf}), 0u);
}

TEST_P(ChannelKindTest, WriteThenReadRoundTrips) {
  auto ch = make();
  auto payload = make_payload(256, 1);
  ASSERT_EQ(ch->try_write(payload), payload.size());
  EXPECT_EQ(ch->readable(), payload.size());

  std::vector<std::byte> out(payload.size());
  ASSERT_EQ(ch->try_read(out), out.size());
  EXPECT_EQ(out, payload);
  EXPECT_EQ(ch->readable(), 0u);
}

TEST_P(ChannelKindTest, PartialReadsPreserveOrder) {
  auto ch = make();
  auto payload = make_payload(100, 2);
  ASSERT_EQ(ch->try_write(payload), payload.size());

  std::vector<std::byte> out(payload.size());
  std::size_t got = 0;
  while (got < out.size()) {
    got += ch->try_read({out.data() + got, std::min<std::size_t>(7, out.size() - got)});
  }
  EXPECT_EQ(out, payload);
}

TEST_P(ChannelKindTest, CloseStopsWritesButDrainsReads) {
  auto ch = make();
  auto payload = make_payload(32, 3);
  ASSERT_EQ(ch->try_write(payload), payload.size());
  ch->close();
  EXPECT_EQ(ch->try_write(payload), 0u);
  EXPECT_FALSE(ch->at_eof());  // still has buffered bytes

  std::vector<std::byte> out(32);
  EXPECT_EQ(ch->try_read(out), 32u);
  EXPECT_TRUE(ch->at_eof());
}

TEST_P(ChannelKindTest, NameIsNonEmpty) { EXPECT_FALSE(make()->name().empty()); }

TEST_P(ChannelKindTest, GatheredWriteEquivalentToConcatenation) {
  auto ch = make();
  auto a = make_payload(37, 10);
  auto b = make_payload(301, 11);
  auto c = make_payload(5, 12);
  const ByteSpan parts[] = {{a.data(), a.size()},
                            {b.data(), b.size()},
                            {c.data(), c.size()}};
  ASSERT_EQ(ch->try_write_v(parts), a.size() + b.size() + c.size());

  std::vector<std::byte> expect;
  expect.insert(expect.end(), a.begin(), a.end());
  expect.insert(expect.end(), b.begin(), b.end());
  expect.insert(expect.end(), c.begin(), c.end());
  std::vector<std::byte> out(expect.size());
  std::size_t got = 0;
  while (got < out.size()) {
    got += ch->try_read({out.data() + got, out.size() - got});
  }
  EXPECT_EQ(out, expect);
}

TEST_P(ChannelKindTest, GatheredWriteWithEmptyAndSingleParts) {
  auto ch = make();
  auto a = make_payload(64, 13);
  const ByteSpan parts[] = {{}, {a.data(), a.size()}, {}};
  ASSERT_EQ(ch->try_write_v(parts), a.size());
  std::vector<std::byte> out(a.size());
  ASSERT_EQ(ch->try_read(out), a.size());
  EXPECT_EQ(out, a);
  EXPECT_EQ(ch->try_write_v(std::span<const ByteSpan>{}), 0u);
}

TEST_P(ChannelKindTest, RecvIntoDrainsLikeTryRead) {
  auto ch = make();
  auto payload = make_payload(128, 14);
  ASSERT_EQ(ch->try_write(payload), payload.size());
  std::vector<std::byte> out(payload.size());
  std::size_t got = 0;
  while (got < out.size()) {
    got += ch->recv_into({out.data() + got, out.size() - got});
  }
  EXPECT_EQ(out, payload);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ChannelKindTest,
                         ::testing::Values(ChannelKind::kRing,
                                           ChannelKind::kStream,
                                           ChannelKind::kLoopback),
                         [](const auto& info) {
                           switch (info.param) {
                             case ChannelKind::kRing: return "ring";
                             case ChannelKind::kStream: return "stream";
                             case ChannelKind::kLoopback: return "loopback";
                           }
                           return "unknown";
                         });

TEST(RingChannelTest, GatheredWriteStopsAtCapacityOnPartBoundaryAgnostic) {
  RingChannel ch(64);
  auto a = make_payload(40, 20);
  auto b = make_payload(40, 21);
  const ByteSpan parts[] = {{a.data(), a.size()}, {b.data(), b.size()}};
  // Only 64 bytes of room: the gather commits a 64-byte prefix that cuts
  // part `b` mid-way, in one tail update.
  const std::size_t n = ch.try_write_v(parts);
  EXPECT_EQ(n, 64u);
  EXPECT_EQ(ch.readable(), 64u);

  std::vector<std::byte> out(64);
  ASSERT_EQ(ch.try_read(out), 64u);
  std::vector<std::byte> expect(a.begin(), a.end());
  expect.insert(expect.end(), b.begin(), b.begin() + 24);
  EXPECT_EQ(out, expect);
}

TEST(RingChannelTest, GatheredWriteWrapsAround) {
  RingChannel ch(64);
  auto pad = make_payload(48, 22);
  ASSERT_EQ(ch.try_write(pad), pad.size());
  std::vector<std::byte> sink(48);
  ASSERT_EQ(ch.try_read(sink), sink.size());
  // Head is at 48; a 32-byte gather must wrap.
  auto a = make_payload(20, 23);
  auto b = make_payload(12, 24);
  const ByteSpan parts[] = {{a.data(), a.size()}, {b.data(), b.size()}};
  ASSERT_EQ(ch.try_write_v(parts), 32u);
  std::vector<std::byte> out(32);
  ASSERT_EQ(ch.try_read(out), 32u);
  std::vector<std::byte> expect(a.begin(), a.end());
  expect.insert(expect.end(), b.begin(), b.end());
  EXPECT_EQ(out, expect);
}

TEST(RingChannelTest, CapacityRoundsToPowerOfTwo) {
  RingChannel ch(100);
  EXPECT_EQ(ch.capacity(), 128u);
  RingChannel tiny(1);
  EXPECT_EQ(tiny.capacity(), 64u);
}

TEST(RingChannelTest, BackpressureAtCapacity) {
  RingChannel ch(64);
  auto payload = make_payload(200, 4);
  const std::size_t accepted = ch.try_write(payload);
  EXPECT_EQ(accepted, 64u);
  EXPECT_EQ(ch.writable(), 0u);

  std::byte out[16];
  ASSERT_EQ(ch.try_read({out, 16}), 16u);
  EXPECT_EQ(ch.writable(), 16u);
}

TEST(RingChannelTest, WrapAroundPreservesBytes) {
  RingChannel ch(64);
  // Drive the indices far past the capacity to exercise wrap handling.
  Prng prng(5);
  std::vector<std::byte> sent, received;
  for (int round = 0; round < 200; ++round) {
    auto chunk = make_payload(static_cast<std::size_t>(prng.next_in(1, 48)),
                              prng.next_u64());
    std::size_t n = ch.try_write(chunk);
    sent.insert(sent.end(), chunk.begin(), chunk.begin() + static_cast<long>(n));
    std::byte buf[48];
    n = ch.try_read({buf, sizeof buf});
    received.insert(received.end(), buf, buf + n);
  }
  std::byte buf[64];
  for (;;) {
    const std::size_t n = ch.try_read({buf, sizeof buf});
    if (n == 0) break;
    received.insert(received.end(), buf, buf + n);
  }
  EXPECT_EQ(received, sent);
}

TEST(RingChannelTest, ConcurrentProducerConsumerStress) {
  RingChannel ch(256);
  constexpr std::size_t kTotal = 1 << 20;
  auto payload = make_payload(kTotal, 6);

  std::thread producer([&] {
    std::size_t sent = 0;
    while (sent < kTotal) {
      sent += ch.try_write({payload.data() + sent,
                            std::min<std::size_t>(97, kTotal - sent)});
    }
  });

  std::vector<std::byte> out(kTotal);
  std::size_t got = 0;
  while (got < kTotal) {
    got += ch.try_read({out.data() + got, std::min<std::size_t>(131, kTotal - got)});
  }
  producer.join();
  EXPECT_EQ(out, payload);
}

// The gathered-write short-write conformance suite that used to live here
// was promoted to tests/transport/channel_conformance_test.cpp, where it
// now also covers the socket and shm transports.

}  // namespace
}  // namespace motor::transport
