#include "transport/fabric.hpp"

#include <gtest/gtest.h>

#include "common/status.hpp"

namespace motor::transport {
namespace {

TEST(FabricTest, BuildsFullMesh) {
  Fabric fabric(3, ChannelKind::kRing, 1024);
  EXPECT_EQ(fabric.size(), 3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      Channel& ch = fabric.link(i, j);
      if (i == j) {
        EXPECT_EQ(ch.name(), "loopback");
      } else {
        EXPECT_EQ(ch.name(), "ring");
      }
    }
  }
}

TEST(FabricTest, LinksAreDirectedAndDistinct) {
  Fabric fabric(2, ChannelKind::kRing, 1024);
  std::byte data[4] = {};
  fabric.link(0, 1).try_write({data, 4});
  EXPECT_EQ(fabric.link(0, 1).readable(), 4u);
  EXPECT_EQ(fabric.link(1, 0).readable(), 0u);
}

TEST(FabricTest, BadRankFatals) {
  Fabric fabric(2, ChannelKind::kStream, 1024);
  EXPECT_THROW(fabric.link(-1, 0), FatalError);
  EXPECT_THROW(fabric.link(0, 2), FatalError);
}

TEST(FabricTest, AddRanksExtendsMeshAndKeepsOldChannels) {
  Fabric fabric(2, ChannelKind::kRing, 1024);
  std::byte data[4] = {};
  Channel& old_link = fabric.link(0, 1);
  old_link.try_write({data, 4});

  const int first_new = fabric.add_ranks(2);
  EXPECT_EQ(first_new, 2);
  EXPECT_EQ(fabric.size(), 4);

  // Old channel object (and its buffered bytes) survives growth.
  EXPECT_EQ(fabric.link(0, 1).readable(), 4u);
  EXPECT_EQ(&fabric.link(0, 1), &old_link);

  // New links exist in all directions.
  fabric.link(3, 0).try_write({data, 2});
  EXPECT_EQ(fabric.link(3, 0).readable(), 2u);
  EXPECT_EQ(fabric.link(2, 3).readable(), 0u);
}

TEST(FabricTest, SingleRankWorldIsJustLoopback) {
  Fabric fabric(1, ChannelKind::kStream, 512);
  EXPECT_EQ(fabric.link(0, 0).name(), "loopback");
}

TEST(FabricTest, LinksAreCreatedLazily) {
  // A 64-rank fabric must not allocate 64^2 channel buffers up front;
  // links materialise on first use and each use bumps the epoch exactly
  // once.
  Fabric fabric(64, ChannelKind::kRing, 1 << 16);
  EXPECT_EQ(fabric.live_links(), 0u);
  const std::uint64_t e0 = fabric.epoch();

  Channel& ch = fabric.link(3, 7);
  EXPECT_EQ(fabric.live_links(), 1u);
  EXPECT_EQ(fabric.epoch(), e0 + 1);

  // Second lookup reuses the channel without another epoch bump.
  EXPECT_EQ(&fabric.link(3, 7), &ch);
  EXPECT_EQ(fabric.live_links(), 1u);
  EXPECT_EQ(fabric.epoch(), e0 + 1);
}

TEST(FabricTest, SnapshotRankSeesOnlyLiveLinks) {
  Fabric fabric(4, ChannelKind::kRing, 1 << 10);
  fabric.link(1, 2);  // outbound from 2's perspective: none; inbound: 1->2
  fabric.link(2, 0);

  std::vector<Channel*> in;
  std::vector<Channel*> out;
  const std::uint64_t e = fabric.snapshot_rank(2, in, out);
  EXPECT_EQ(e, fabric.epoch());
  ASSERT_EQ(in.size(), 4u);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_NE(in[1], nullptr);   // 1 -> 2 exists
  EXPECT_EQ(in[0], nullptr);   // 0 -> 2 never touched
  EXPECT_NE(out[0], nullptr);  // 2 -> 0 exists
  EXPECT_EQ(out[3], nullptr);

  // Creating a new link invalidates the snapshot via the epoch.
  fabric.link(3, 2);
  EXPECT_GT(fabric.epoch(), e);
  const std::uint64_t e2 = fabric.snapshot_rank(2, in, out);
  EXPECT_EQ(e2, fabric.epoch());
  EXPECT_NE(in[3], nullptr);
}

TEST(FabricTest, EgressLinksShareOneBandwidthBudget) {
  // The rate limit models each rank's NIC: with a 1-byte/s wire, the
  // initial 16 KiB burst budget is shared across every egress link of
  // rank 0, so writing it out on link 0->1 leaves nothing for 0->2,
  // while rank 1's own egress budget is untouched.
  Fabric fabric(3, ChannelKind::kRing, 1 << 20, /*wire_latency_ns=*/0,
                /*wire_bandwidth_bps=*/1);
  std::vector<std::byte> burst(16 * 1024);
  EXPECT_EQ(fabric.link(0, 1).try_write({burst.data(), burst.size()}),
            burst.size());
  EXPECT_EQ(fabric.link(0, 2).try_write({burst.data(), burst.size()}), 0u);
  EXPECT_EQ(fabric.link(1, 2).try_write({burst.data(), burst.size()}),
            burst.size());
}

TEST(FabricTest, TopologyScalesLatencyByHopCount) {
  // 9 ranks on a 3x3 mesh with 1ms per hop: the corner-to-corner link
  // (4 hops) must model 4x the delay of a neighbour link. Channel names
  // confirm the latency decorator is present; hop counts come from the
  // topology the fabric exposes.
  TopologySpec spec;
  spec.kind = TopologyKind::kMesh2D;
  Fabric fabric(9, ChannelKind::kRing, 1 << 10, /*wire_latency_ns=*/1000000,
                /*wire_bandwidth_bps=*/0, spec);
  EXPECT_EQ(fabric.topology().kind(), TopologyKind::kMesh2D);
  EXPECT_EQ(fabric.topology().distance(0, 8), 4);
  EXPECT_EQ(fabric.link(0, 1).name(), "ring+latency");
  EXPECT_EQ(fabric.link(0, 0).name(), "loopback");
}

}  // namespace
}  // namespace motor::transport
