#include "transport/fabric.hpp"

#include <gtest/gtest.h>

#include "common/status.hpp"

namespace motor::transport {
namespace {

TEST(FabricTest, BuildsFullMesh) {
  Fabric fabric(3, ChannelKind::kRing, 1024);
  EXPECT_EQ(fabric.size(), 3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      Channel& ch = fabric.link(i, j);
      if (i == j) {
        EXPECT_EQ(ch.name(), "loopback");
      } else {
        EXPECT_EQ(ch.name(), "ring");
      }
    }
  }
}

TEST(FabricTest, LinksAreDirectedAndDistinct) {
  Fabric fabric(2, ChannelKind::kRing, 1024);
  std::byte data[4] = {};
  fabric.link(0, 1).try_write({data, 4});
  EXPECT_EQ(fabric.link(0, 1).readable(), 4u);
  EXPECT_EQ(fabric.link(1, 0).readable(), 0u);
}

TEST(FabricTest, BadRankFatals) {
  Fabric fabric(2, ChannelKind::kStream, 1024);
  EXPECT_THROW(fabric.link(-1, 0), FatalError);
  EXPECT_THROW(fabric.link(0, 2), FatalError);
}

TEST(FabricTest, AddRanksExtendsMeshAndKeepsOldChannels) {
  Fabric fabric(2, ChannelKind::kRing, 1024);
  std::byte data[4] = {};
  Channel& old_link = fabric.link(0, 1);
  old_link.try_write({data, 4});

  const int first_new = fabric.add_ranks(2);
  EXPECT_EQ(first_new, 2);
  EXPECT_EQ(fabric.size(), 4);

  // Old channel object (and its buffered bytes) survives growth.
  EXPECT_EQ(fabric.link(0, 1).readable(), 4u);
  EXPECT_EQ(&fabric.link(0, 1), &old_link);

  // New links exist in all directions.
  fabric.link(3, 0).try_write({data, 2});
  EXPECT_EQ(fabric.link(3, 0).readable(), 2u);
  EXPECT_EQ(fabric.link(2, 3).readable(), 0u);
}

TEST(FabricTest, SingleRankWorldIsJustLoopback) {
  Fabric fabric(1, ChannelKind::kStream, 512);
  EXPECT_EQ(fabric.link(0, 0).name(), "loopback");
}

}  // namespace
}  // namespace motor::transport
