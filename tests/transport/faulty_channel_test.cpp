// FaultyChannel unit tests: each fault class in isolation, plus the
// determinism contract (same seed + same call sequence => same faults).
#include "transport/faulty_channel.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "transport/ring_channel.hpp"

namespace motor::transport {
namespace {

std::unique_ptr<FaultyChannel> make_faulty(const FaultConfig& cfg,
                                           std::size_t capacity = 1 << 16) {
  return std::make_unique<FaultyChannel>(
      std::make_unique<RingChannel>(capacity), cfg);
}

std::vector<std::byte> pattern(std::size_t n, std::uint8_t base = 0) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((base + i) & 0xFF);
  }
  return v;
}

std::vector<std::byte> drain(Channel& ch) {
  std::vector<std::byte> out(ch.readable());
  const std::size_t got = ch.try_read({out.data(), out.size()});
  out.resize(got);
  return out;
}

TEST(FaultyChannelTest, ZeroRatesArePassthrough) {
  auto ch = make_faulty(FaultConfig{});
  const auto frame = pattern(500);
  // Gathered write: three parts, one frame.
  const ByteSpan parts[] = {{frame.data(), 100},
                            {frame.data() + 100, 250},
                            {frame.data() + 350, 150}};
  EXPECT_EQ(ch->try_write_v(parts), 500u);
  EXPECT_EQ(drain(*ch), frame);
  EXPECT_EQ(ch->stats().frames_total, 1u);
  EXPECT_EQ(ch->stats().injected(), 0u);
  EXPECT_EQ(ch->name(), "ring+faulty");
}

TEST(FaultyChannelTest, DropReportsFullAcceptance) {
  FaultConfig cfg;
  cfg.drop_rate = 1.0;
  auto ch = make_faulty(cfg);
  const auto frame = pattern(256);
  // The writer must believe the bytes left — that is what makes a drop a
  // silent wire fault rather than backpressure.
  EXPECT_EQ(ch->try_write(frame), 256u);
  EXPECT_EQ(ch->readable(), 0u);
  EXPECT_EQ(ch->stats().frames_dropped, 1u);
}

TEST(FaultyChannelTest, TruncateDeliversStrictPrefix) {
  FaultConfig cfg;
  cfg.truncate_rate = 1.0;
  cfg.seed = 5;
  auto ch = make_faulty(cfg);
  const auto frame = pattern(256);
  EXPECT_EQ(ch->try_write(frame), 256u);  // full acceptance reported
  const auto got = drain(*ch);
  EXPECT_LT(got.size(), frame.size());
  // Whatever arrived is a prefix, uncorrupted.
  EXPECT_TRUE(std::equal(got.begin(), got.end(), frame.begin()));
  EXPECT_EQ(ch->stats().frames_truncated, 1u);
}

TEST(FaultyChannelTest, DuplicateDeliversTwoFullCopies) {
  FaultConfig cfg;
  cfg.duplicate_rate = 1.0;
  auto ch = make_faulty(cfg);
  const auto frame = pattern(64);
  EXPECT_EQ(ch->try_write(frame), 64u);
  const auto got = drain(*ch);
  ASSERT_EQ(got.size(), 128u);
  EXPECT_TRUE(std::equal(frame.begin(), frame.end(), got.begin()));
  EXPECT_TRUE(std::equal(frame.begin(), frame.end(), got.begin() + 64));
  EXPECT_EQ(ch->stats().frames_duplicated, 1u);
}

TEST(FaultyChannelTest, BitflipCorruptsBoundedBits) {
  FaultConfig cfg;
  cfg.bitflip_rate = 1.0;
  cfg.max_bitflips = 4;
  cfg.seed = 11;
  auto ch = make_faulty(cfg);
  const auto frame = pattern(512);
  EXPECT_EQ(ch->try_write(frame), 512u);
  const auto got = drain(*ch);
  ASSERT_EQ(got.size(), 512u);
  std::size_t differing_bits = 0;
  for (std::size_t i = 0; i < 512; ++i) {
    auto x = static_cast<unsigned>(frame[i] ^ got[i]);
    while (x != 0) {
      differing_bits += x & 1u;
      x >>= 1;
    }
  }
  EXPECT_GE(differing_bits, 1u);
  EXPECT_LE(differing_bits, 4u);
  EXPECT_EQ(ch->stats().frames_bitflipped, 1u);
}

TEST(FaultyChannelTest, DelayReleasesBehindLaterTraffic) {
  FaultConfig cfg;
  cfg.delay_rate = 1.0;
  cfg.delay_ops = 1;
  cfg.seed = 3;
  auto ch = make_faulty(cfg);
  const auto first = pattern(32, 0x00);
  const auto second = pattern(32, 0x80);

  EXPECT_EQ(ch->try_write(first), 32u);   // held (first delay draw)
  EXPECT_EQ(ch->readable(), 0u);
  // Second frame: the hold slot is occupied, so it passes through clean,
  // overtaking the held frame.
  EXPECT_EQ(ch->try_write(second), 32u);
  // Third write ages the held frame out (delay_ops=1 exceeded) — and, with
  // delay_rate=1.0, immediately occupies the freed hold slot itself.
  const auto third = pattern(32, 0x40);
  EXPECT_EQ(ch->try_write(third), 32u);

  const auto got = drain(*ch);
  ASSERT_EQ(got.size(), 64u);
  // Order on the wire so far: second (overtook), then first (released).
  EXPECT_TRUE(std::equal(second.begin(), second.end(), got.begin()));
  EXPECT_TRUE(std::equal(first.begin(), first.end(), got.begin() + 32));
  EXPECT_EQ(ch->stats().frames_delayed, 2u);

  ch->close();  // force-flush the held third frame
  EXPECT_EQ(drain(*ch), third);
}

TEST(FaultyChannelTest, CloseFlushesHeldFrame) {
  FaultConfig cfg;
  cfg.delay_rate = 1.0;
  cfg.delay_ops = 1000;  // would never age out on its own
  auto ch = make_faulty(cfg);
  const auto frame = pattern(48);
  EXPECT_EQ(ch->try_write(frame), 48u);
  EXPECT_EQ(ch->readable(), 0u);
  ch->close();
  EXPECT_EQ(drain(*ch), frame);
}

TEST(FaultyChannelTest, ShortWriteIsHonestlyReported) {
  FaultConfig cfg;
  cfg.short_write_rate = 1.0;
  cfg.seed = 17;
  auto ch = make_faulty(cfg);
  const auto frame = pattern(1000);
  const ByteSpan parts[] = {{frame.data(), 400}, {frame.data() + 400, 600}};
  const std::size_t accepted = ch->try_write_v(parts);
  // A short write accepts a strict prefix and SAYS so — unlike drop and
  // truncate, the caller is expected to resume the tail.
  EXPECT_GE(accepted, 1u);
  EXPECT_LT(accepted, 1000u);
  const auto got = drain(*ch);
  ASSERT_EQ(got.size(), accepted);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), frame.begin()));
  EXPECT_EQ(ch->stats().short_writes, 1u);

  // Resuming the unaccepted tail (as the device's pump does) completes
  // the frame — possibly shortened again, so loop with a bound.
  std::size_t off = accepted;
  for (int i = 0; i < 64 && off < frame.size(); ++i) {
    off += ch->try_write({frame.data() + off, frame.size() - off});
  }
  EXPECT_EQ(off, frame.size());
  const auto rest = drain(*ch);
  EXPECT_TRUE(std::equal(rest.begin(), rest.end(), frame.begin() + accepted));
}

TEST(FaultyChannelTest, SameSeedSameSchedule) {
  FaultConfig cfg;
  cfg.seed = 123;
  cfg.drop_rate = 0.1;
  cfg.truncate_rate = 0.1;
  cfg.duplicate_rate = 0.1;
  cfg.bitflip_rate = 0.1;
  cfg.delay_rate = 0.1;
  cfg.short_write_rate = 0.2;

  auto run = [&cfg] {
    auto ch = make_faulty(cfg);
    std::vector<std::byte> delivered;
    for (int i = 0; i < 200; ++i) {
      const auto frame = pattern(64, static_cast<std::uint8_t>(i));
      std::size_t off = 0;
      for (int r = 0; r < 8 && off < frame.size(); ++r) {
        off += ch->try_write({frame.data() + off, frame.size() - off});
      }
      const auto got = drain(*ch);
      delivered.insert(delivered.end(), got.begin(), got.end());
    }
    return std::pair{delivered, ch->stats()};
  };

  const auto [bytes1, stats1] = run();
  const auto [bytes2, stats2] = run();
  EXPECT_EQ(bytes1, bytes2);
  EXPECT_EQ(stats1.frames_total, stats2.frames_total);
  EXPECT_EQ(stats1.frames_dropped, stats2.frames_dropped);
  EXPECT_EQ(stats1.frames_truncated, stats2.frames_truncated);
  EXPECT_EQ(stats1.frames_duplicated, stats2.frames_duplicated);
  EXPECT_EQ(stats1.frames_bitflipped, stats2.frames_bitflipped);
  EXPECT_EQ(stats1.frames_delayed, stats2.frames_delayed);
  EXPECT_EQ(stats1.short_writes, stats2.short_writes);
  // With every rate nonzero and 200 frames, silence would mean the
  // injector is wired to nothing.
  EXPECT_GT(stats1.injected(), 0u);
}

TEST(FaultyChannelTest, ReadsForwardUntouched) {
  auto ch = make_faulty(FaultConfig{});
  const auto frame = pattern(128);
  EXPECT_EQ(ch->try_write(frame), 128u);
  EXPECT_EQ(ch->readable(), 128u);
  std::vector<std::byte> half(64);
  EXPECT_EQ(ch->recv_into({half.data(), 64}), 64u);
  EXPECT_TRUE(std::equal(half.begin(), half.end(), frame.begin()));
  EXPECT_EQ(drain(*ch).size(), 64u);
}

}  // namespace
}  // namespace motor::transport
