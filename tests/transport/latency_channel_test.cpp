#include "transport/latency_channel.hpp"

#include <gtest/gtest.h>

#include "pal/clock.hpp"
#include "pal/thread.hpp"
#include "transport/ring_channel.hpp"

using namespace std::chrono_literals;

namespace motor::transport {
namespace {

std::unique_ptr<LatencyChannel> make(std::uint64_t latency_ns,
                                     std::size_t cap = 1024) {
  return std::make_unique<LatencyChannel>(
      std::make_unique<RingChannel>(cap), latency_ns);
}

TEST(LatencyChannelTest, ZeroLatencyIsPassthrough) {
  auto ch = make(0);
  std::byte data[16] = {};
  ASSERT_EQ(ch->try_write({data, 16}), 16u);
  EXPECT_EQ(ch->readable(), 16u);
  std::byte out[16];
  EXPECT_EQ(ch->try_read({out, 16}), 16u);
}

TEST(LatencyChannelTest, BytesInvisibleBeforeRelease) {
  auto ch = make(50'000'000);  // 50 ms
  std::byte data[8] = {};
  ASSERT_EQ(ch->try_write({data, 8}), 8u);
  EXPECT_EQ(ch->readable(), 0u);
  std::byte out[8];
  EXPECT_EQ(ch->try_read({out, 8}), 0u);
}

TEST(LatencyChannelTest, BytesArriveAfterLatency) {
  auto ch = make(5'000'000);  // 5 ms
  std::byte data[8];
  for (int i = 0; i < 8; ++i) data[i] = static_cast<std::byte>(i);
  ASSERT_EQ(ch->try_write({data, 8}), 8u);

  const pal::Stopwatch sw;
  std::byte out[8];
  std::size_t got = 0;
  while (got < 8) got += ch->try_read({out + got, 8 - got});
  EXPECT_GE(sw.elapsed_ns(), 4'000'000u);  // ~the configured latency
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], static_cast<std::byte>(i));
}

TEST(LatencyChannelTest, WritesReleaseInOrder) {
  auto ch = make(2'000'000);
  std::byte a[4] = {std::byte{1}, std::byte{1}, std::byte{1}, std::byte{1}};
  std::byte b[4] = {std::byte{2}, std::byte{2}, std::byte{2}, std::byte{2}};
  ch->try_write({a, 4});
  // Clock-driven gap so the two writes get distinct release deadlines
  // (the channel stamps deadlines from pal::Clock, so spin on it too).
  const pal::Stopwatch gap;
  while (gap.elapsed_ns() < 1'000'000) pal::Thread::yield();
  ch->try_write({b, 4});

  std::byte out[8];
  std::size_t got = 0;
  while (got < 8) got += ch->try_read({out + got, 8 - got});
  EXPECT_EQ(out[0], std::byte{1});
  EXPECT_EQ(out[7], std::byte{2});
}

TEST(LatencyChannelTest, BackpressureComesFromInnerChannel) {
  auto ch = make(1'000'000, /*cap=*/64);
  std::vector<std::byte> big(200);
  EXPECT_EQ(ch->try_write(big), 64u);  // inner ring capacity
  EXPECT_EQ(ch->writable(), 0u);
}

TEST(LatencyChannelTest, NameAdvertisesDecoration) {
  EXPECT_EQ(make(1000)->name(), "ring+latency");
}

TEST(LatencyChannelTest, CloseAndEofDelegate) {
  auto ch = make(0);
  std::byte data[4] = {};
  ch->try_write({data, 4});
  ch->close();
  EXPECT_FALSE(ch->at_eof());
  std::byte out[4];
  ch->try_read({out, 4});
  EXPECT_TRUE(ch->at_eof());
}

}  // namespace
}  // namespace motor::transport
