#include "transport/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/status.hpp"

namespace motor::transport {
namespace {

TEST(TopologyTest, FullMeshIsOneHopEverywhere) {
  Topology topo({TopologyKind::kFullMesh}, 9);
  for (int a = 0; a < 9; ++a) {
    for (int b = 0; b < 9; ++b) {
      EXPECT_EQ(topo.distance(a, b), a == b ? 0 : 1);
    }
  }
  EXPECT_EQ(topo.neighbors(4).size(), 8u);
}

TEST(TopologyTest, Mesh2DIsManhattanDistance) {
  // 9 ranks -> 3x3 grid:  0 1 2 / 3 4 5 / 6 7 8
  Topology topo({TopologyKind::kMesh2D}, 9);
  EXPECT_EQ(topo.distance(0, 1), 1);
  EXPECT_EQ(topo.distance(0, 3), 1);
  EXPECT_EQ(topo.distance(0, 4), 2);
  EXPECT_EQ(topo.distance(0, 8), 4);  // corner to corner, no wrap
  EXPECT_EQ(topo.distance(2, 6), 4);
  const std::vector<int> center = topo.neighbors(4);
  EXPECT_EQ(center, (std::vector<int>{1, 3, 5, 7}));
  const std::vector<int> corner = topo.neighbors(0);
  EXPECT_EQ(corner, (std::vector<int>{1, 3}));
}

TEST(TopologyTest, Torus2DWrapsBothDimensions) {
  Topology topo({TopologyKind::kTorus2D}, 9);
  EXPECT_EQ(topo.distance(0, 2), 1);  // wraps around the row
  EXPECT_EQ(topo.distance(0, 6), 1);  // wraps around the column
  EXPECT_EQ(topo.distance(0, 8), 2);  // one wrap in each dimension
  EXPECT_EQ(topo.distance(0, 4), 2);
  // Torus distance can never exceed the mesh distance.
  Topology mesh({TopologyKind::kMesh2D}, 9);
  for (int a = 0; a < 9; ++a) {
    for (int b = 0; b < 9; ++b) {
      EXPECT_LE(topo.distance(a, b), mesh.distance(a, b));
    }
  }
}

TEST(TopologyTest, FatTreeIsOneOrThreeHops) {
  TopologySpec spec{TopologyKind::kFatTree};
  spec.fat_tree_radix = 4;
  Topology topo(spec, 10);
  EXPECT_EQ(topo.distance(0, 3), 1);  // same leaf switch
  EXPECT_EQ(topo.distance(0, 4), 3);  // leaf -> spine -> leaf
  EXPECT_EQ(topo.distance(8, 9), 1);  // partial trailing leaf
  EXPECT_EQ(topo.ranks_per_node(), 4);
  EXPECT_EQ(topo.node_count(), 3);
}

TEST(TopologyTest, DistanceIsSymmetricAndPositive) {
  for (const TopologyKind kind :
       {TopologyKind::kFullMesh, TopologyKind::kMesh2D, TopologyKind::kTorus2D,
        TopologyKind::kFatTree}) {
    for (const int n : {1, 2, 5, 13, 16}) {
      Topology topo({kind}, n);
      for (int a = 0; a < n; ++a) {
        EXPECT_EQ(topo.distance(a, a), 0);
        for (int b = 0; b < n; ++b) {
          EXPECT_EQ(topo.distance(a, b), topo.distance(b, a));
          if (a != b) EXPECT_GE(topo.distance(a, b), 1);
        }
      }
    }
  }
}

TEST(TopologyTest, NodesAreContiguousAndLedByLowestRank) {
  TopologySpec spec{TopologyKind::kMesh2D};
  spec.ranks_per_node = 4;
  Topology topo(spec, 10);
  EXPECT_EQ(topo.node_count(), 3);
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(3), 0);
  EXPECT_EQ(topo.node_of(4), 1);
  EXPECT_EQ(topo.node_of(9), 2);
  EXPECT_TRUE(topo.same_node(4, 7));
  EXPECT_FALSE(topo.same_node(3, 4));
  EXPECT_EQ(topo.leader_of(1), 4);
  EXPECT_EQ(topo.node_size(0), 4);
  EXPECT_EQ(topo.node_size(2), 2);  // trailing partial node
}

TEST(TopologyTest, AutoNodeGroupingFollowsTheFabricShape) {
  // Mesh/torus group by grid row; fat tree by leaf switch.
  Topology mesh({TopologyKind::kMesh2D}, 16);  // 4x4 grid
  EXPECT_EQ(mesh.ranks_per_node(), 4);
  TopologySpec ft{TopologyKind::kFatTree};
  ft.fat_tree_radix = 8;
  Topology tree(ft, 32);
  EXPECT_EQ(tree.ranks_per_node(), 8);
  EXPECT_EQ(tree.node_count(), 4);
}

TEST(TopologyTest, ResizeRecomputesGridAndGrouping) {
  Topology topo({TopologyKind::kMesh2D}, 4);  // 2x2
  EXPECT_EQ(topo.distance(0, 3), 2);
  topo.resize(16);  // 4x4
  EXPECT_EQ(topo.size(), 16);
  EXPECT_EQ(topo.distance(0, 15), 6);
  EXPECT_EQ(topo.ranks_per_node(), 4);
}

TEST(TopologyTest, BadRankFatals) {
  Topology topo({TopologyKind::kMesh2D}, 4);
  EXPECT_THROW(topo.distance(-1, 0), FatalError);
  EXPECT_THROW(topo.distance(0, 4), FatalError);
}

}  // namespace
}  // namespace motor::transport
