// Bitwise / shift opcodes of the interpreter.
#include <gtest/gtest.h>

#include "vm/assembler.hpp"
#include "vm/interpreter.hpp"
#include "vm/vm.hpp"

namespace motor::vm {
namespace {

class BitOpsTest : public ::testing::Test {
 protected:
  BitOpsTest() : vm_(uncosted()), thread_(vm_), interp_(vm_, thread_) {}
  static VmConfig uncosted() {
    VmConfig c;
    c.profile = RuntimeProfile::uncosted();
    return c;
  }

  std::int32_t run_i32(MethodAssembler& a) {
    Program p;
    p.add_method(a.build());
    return interp_.invoke(p, 0, {}).i32;
  }
  std::int64_t run_i64(MethodAssembler& a) {
    Program p;
    p.add_method(a.build());
    return interp_.invoke(p, 0, {}).i64;
  }

  Vm vm_;
  ManagedThread thread_;
  Interpreter interp_;
};

TEST_F(BitOpsTest, AndOrXor32) {
  MethodAssembler a("main", 0, 0);
  a.ldc_i4(0b1100).ldc_i4(0b1010).and_().ret();
  EXPECT_EQ(run_i32(a), 0b1000);

  MethodAssembler o("main", 0, 0);
  o.ldc_i4(0b1100).ldc_i4(0b1010).or_().ret();
  EXPECT_EQ(run_i32(o), 0b1110);

  MethodAssembler x("main", 0, 0);
  x.ldc_i4(0b1100).ldc_i4(0b1010).xor_().ret();
  EXPECT_EQ(run_i32(x), 0b0110);
}

TEST_F(BitOpsTest, Not32And64) {
  MethodAssembler a("main", 0, 0);
  a.ldc_i4(0).not_().ret();
  EXPECT_EQ(run_i32(a), -1);

  MethodAssembler b("main", 0, 0);
  b.ldc_i8(0x00FF).not_().ret();
  EXPECT_EQ(run_i64(b), ~std::int64_t{0x00FF});
}

TEST_F(BitOpsTest, Shifts) {
  MethodAssembler a("main", 0, 0);
  a.ldc_i4(3).ldc_i4(4).shl().ret();
  EXPECT_EQ(run_i32(a), 48);

  MethodAssembler b("main", 0, 0);
  b.ldc_i4(-64).ldc_i4(2).shr().ret();
  EXPECT_EQ(run_i32(b), -16);  // arithmetic shift on signed

  MethodAssembler c("main", 0, 0);
  c.ldc_i8(1).ldc_i4(40).shl().ret();
  EXPECT_EQ(run_i64(c), std::int64_t{1} << 40);
}

TEST_F(BitOpsTest, ShiftCountIsMasked) {
  // Shift counts wrap modulo the operand width (CLI semantics).
  MethodAssembler a("main", 0, 0);
  a.ldc_i4(1).ldc_i4(33).shl().ret();
  EXPECT_EQ(run_i32(a), 2);
}

TEST_F(BitOpsTest, BitwiseOnFloatFatals) {
  MethodAssembler a("main", 0, 0);
  a.ldc_r8(1.0).ldc_r8(2.0).and_().ret();
  EXPECT_THROW(run_i32(a), FatalError);
}

TEST_F(BitOpsTest, PopcountKernel) {
  // Managed popcount via shift/and loop — a realistic bit-twiddling
  // kernel running on the interpreter with back-edge GC polls.
  MethodAssembler a("main", 1, 2);  // arg0 = v; loc1 = count
  const int loop = a.new_label();
  const int done = a.new_label();
  a.ldc_i4(0).stloc(1);
  a.bind(loop);
  a.ldloc(0).ldc_i4(0).ceq().brtrue(done);
  a.ldloc(1).ldloc(0).ldc_i4(1).and_().add().stloc(1);
  a.ldloc(0).ldc_i4(1).shr().stloc(0);
  a.br(loop);
  a.bind(done);
  a.ldloc(1).ret();
  Program p;
  p.add_method(a.build());
  const Value arg = Value::from_i32(0b1011101);
  EXPECT_EQ(interp_.invoke(p, 0, std::span(&arg, 1)).i32, 5);
}

}  // namespace
}  // namespace motor::vm
