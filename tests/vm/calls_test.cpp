// FCall vs P/Invoke vs JNI call-mechanism semantics (paper §5.1/§2.3):
// discipline (GC polling, marshalling, automatic pinning) and the cost
// ordering the runtime profiles encode.
#include <gtest/gtest.h>

#include "pal/clock.hpp"
#include "pal/thread.hpp"
#include "vm/handles.hpp"
#include "vm/vm.hpp"

namespace motor::vm {
namespace {

VmConfig profile_config(RuntimeProfile profile) {
  VmConfig c;
  c.profile = std::move(profile);
  c.heap.young_bytes = 64 * 1024;
  return c;
}

TEST(CallsTest, FCallInvokesBodyWithArgs) {
  Vm vm(profile_config(RuntimeProfile::uncosted()));
  ManagedThread thread(vm);
  const int idx = vm.fcalls().register_fcall(
      "sum", [](Vm&, ManagedThread&, std::span<const Value> args) {
        return Value::from_i64(args[0].i64 + args[1].i64);
      });
  const Value args[] = {Value::from_i64(40), Value::from_i64(2)};
  EXPECT_EQ(vm.fcalls().invoke(vm, thread, idx, args).i64, 42);
  EXPECT_EQ(vm.fcalls().find("sum"), idx);
  EXPECT_EQ(vm.fcalls().find("missing"), -1);
}

TEST(CallsTest, FCallPollsGcOnEntryAndExit) {
  Vm vm(profile_config(RuntimeProfile::uncosted()));
  ManagedThread thread(vm);
  const int idx = vm.fcalls().register_fcall(
      "noop",
      [](Vm&, ManagedThread&, std::span<const Value>) { return Value(); });
  const auto polls_before = vm.safepoints().polls();
  vm.fcalls().invoke(vm, thread, idx, {});
  EXPECT_EQ(vm.safepoints().polls(), polls_before + 2);
}

TEST(CallsTest, JniInvocationAutoPinsReferenceArgs) {
  Vm vm(profile_config(RuntimeProfile::uncosted()));
  ManagedThread thread(vm);
  const MethodTable* ints = vm.types().primitive_array(ElementKind::kInt32);
  GcRoot arr(thread, vm.heap().alloc_array(ints, 8));

  bool was_pinned_inside = false;
  const int idx = vm.pinvokes().register_entry(
      "native_touch",
      [&](Vm& inner_vm, ManagedThread&, std::span<const Value> args) {
        was_pinned_inside = inner_vm.heap().is_pinned(args[0].ref);
        return Value();
      });
  const Value args[] = {Value::from_ref(arr.get())};
  vm.pinvokes().invoke_jni(vm, thread, idx, args);
  EXPECT_TRUE(was_pinned_inside);                    // pinned for the call
  EXPECT_FALSE(vm.heap().is_pinned(arr.get()));      // unpinned after
}

TEST(CallsTest, PInvokeDoesNotPin) {
  Vm vm(profile_config(RuntimeProfile::uncosted()));
  ManagedThread thread(vm);
  const MethodTable* ints = vm.types().primitive_array(ElementKind::kInt32);
  GcRoot arr(thread, vm.heap().alloc_array(ints, 8));

  bool was_pinned_inside = true;
  const int idx = vm.pinvokes().register_entry(
      "native_raw", [&](Vm& inner_vm, ManagedThread&,
                        std::span<const Value> args) {
        was_pinned_inside = inner_vm.heap().is_pinned(args[0].ref);
        return Value();
      });
  const Value args[] = {Value::from_ref(arr.get())};
  vm.pinvokes().invoke(vm, thread, idx, args);
  // "In the CLI it is the responsibility of the application" (§2.3).
  EXPECT_FALSE(was_pinned_inside);
}

TEST(CallsTest, TransitionCostOrderingFCallBelowPInvokeBelowNothing) {
  // FCall must be much cheaper than P/Invoke under every hosted profile.
  for (const RuntimeProfile& profile :
       {RuntimeProfile::sscli(), RuntimeProfile::commercial_net()}) {
    Vm vm(profile_config(profile));
    ManagedThread thread(vm);
    const int f = vm.fcalls().register_fcall(
        "f", [](Vm&, ManagedThread&, std::span<const Value>) { return Value(); });
    const int p = vm.pinvokes().register_entry(
        "p", [](Vm&, ManagedThread&, std::span<const Value>) { return Value(); });

    constexpr int kCalls = 200;
    pal::Stopwatch sw;
    for (int i = 0; i < kCalls; ++i) vm.fcalls().invoke(vm, thread, f, {});
    const auto fcall_ns = sw.elapsed_ns();
    sw.restart();
    for (int i = 0; i < kCalls; ++i) vm.pinvokes().invoke(vm, thread, p, {});
    const auto pinvoke_ns = sw.elapsed_ns();

    EXPECT_LT(fcall_ns * 3, pinvoke_ns) << profile.name;
  }
}

TEST(CallsTest, SscliPInvokeCostlierThanCommercialNet) {
  const auto measure = [](const RuntimeProfile& profile) {
    Vm vm(profile_config(profile));
    ManagedThread thread(vm);
    const int p = vm.pinvokes().register_entry(
        "p", [](Vm&, ManagedThread&, std::span<const Value>) { return Value(); });
    pal::Stopwatch sw;
    for (int i = 0; i < 200; ++i) vm.pinvokes().invoke(vm, thread, p, {});
    return sw.elapsed_ns();
  };
  EXPECT_GT(measure(RuntimeProfile::sscli()),
            measure(RuntimeProfile::commercial_net()));
}

TEST(CallsTest, NativeRegionAllowsGcToProceed) {
  // A thread inside a P/Invoke body counts as stopped: another thread can
  // collect while it is "in native".
  Vm vm(profile_config(RuntimeProfile::uncosted()));
  ManagedThread main_thread(vm);

  std::atomic<bool> native_entered{false};
  std::atomic<bool> release_native{false};
  pal::Thread native_thread("native", [&] {
    ManagedThread t(vm);
    NativeRegion region(vm.safepoints());
    native_entered = true;
    while (!release_native) pal::Thread::yield();
  });

  while (!native_entered) pal::Thread::yield();
  vm.heap().collect();  // must not deadlock on the native-parked thread
  release_native = true;
  native_thread.join();
  EXPECT_GE(vm.heap().stats().collections, 1u);
}

}  // namespace
}  // namespace motor::vm
