// Pause-bounded (incremental) collection: bounded mark slices, the
// Dijkstra write barrier, pin-density-aware region relocation, the
// remembered set, and the seeded property that incremental-on and
// incremental-off agree on the reachable set.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/prng.hpp"
#include "mpi/request.hpp"
#include "vm/handles.hpp"
#include "vm/vm.hpp"

namespace motor::vm {
namespace {

VmConfig gc_config(bool incremental, std::size_t young = 64 * 1024,
                   std::size_t region = 16 * 1024) {
  VmConfig c;
  c.profile = RuntimeProfile::uncosted();
  c.heap.young_bytes = young;
  c.heap.incremental = incremental;
  c.heap.region_bytes = region;
  // One object per slice makes small graphs take several slices, so the
  // tests below genuinely interleave mutation with marking; the small
  // alloc step lets pacing fire inside a 64 KiB nursery.
  c.heap.mark_slice_objects = 1;
  c.heap.slice_alloc_step = 4 * 1024;
  return c;
}

/// A VM plus the Node type (i64 value at 0, ref next at 8) — one per GC
/// mode so the property tests can drive two heaps through an identical
/// workload.
struct World {
  explicit World(const VmConfig& config) : vm(config), thread(vm) {
    node = vm.types()
               .define_class("Node")
               .field("value", ElementKind::kInt64)
               .ref_field("next", vm.types().object_type(), true)
               .build();
  }

  Obj make_node(std::int64_t value, Obj next) {
    GcRoot next_root(thread, next);
    Obj n = vm.heap().alloc_object(node);
    set_field(n, 0, value);
    vm.heap().store_ref_field(n, 8, next_root.get());
    return n;
  }

  Vm vm;
  ManagedThread thread;
  const MethodTable* node;
};

void drive_to_idle(ManagedHeap& heap) {
  for (int i = 0; i < 10000 && heap.gc_phase() != GcPhase::kIdle; ++i) {
    heap.incremental_step();
  }
  ASSERT_EQ(heap.gc_phase(), GcPhase::kIdle);
}

/// Canonical signature of the graph reachable from `roots`: values in
/// DFS order with back-references by discovery index, so two heaps with
/// different addresses compare structurally.
std::string reachable_signature(const RootRange& roots, std::size_t count) {
  std::unordered_map<Obj, int> seen;
  std::string sig;
  std::vector<Obj> stack;
  for (std::size_t i = 0; i < count; ++i) {
    sig += "|r" + std::to_string(i);
    stack.push_back(roots.at(i));
    while (!stack.empty()) {
      Obj obj = stack.back();
      stack.pop_back();
      if (obj == nullptr) {
        sig += ",_";
        continue;
      }
      auto it = seen.find(obj);
      if (it != seen.end()) {
        sig += ",@" + std::to_string(it->second);
        continue;
      }
      const int id = static_cast<int>(seen.size());
      seen.emplace(obj, id);
      sig += "," + std::to_string(get_field<std::int64_t>(obj, 0));
      stack.push_back(get_ref_field(obj, 8));
    }
  }
  return sig;
}

TEST(GcIncrementalTest, ExplicitStepsCompleteACycle) {
  World w(gc_config(true));
  GcRoot head(w.thread,
              w.make_node(1, w.make_node(2, w.make_node(3, nullptr))));
  w.make_node(100, nullptr);  // garbage
  w.make_node(101, nullptr);

  ASSERT_EQ(w.vm.heap().gc_phase(), GcPhase::kIdle);
  w.vm.heap().incremental_step();
  EXPECT_EQ(w.vm.heap().gc_phase(), GcPhase::kMarking);
  w.vm.heap().verify_heap();  // mid-cycle heap is still walkable

  drive_to_idle(w.vm.heap());
  EXPECT_EQ(w.vm.heap().stats().collections, 1u);
  EXPECT_EQ(w.vm.heap().stats().incremental_cycles, 1u);
  EXPECT_GE(w.vm.heap().stats().mark_slices, 2u);

  Obj n1 = head.get();
  ASSERT_NE(n1, nullptr);
  EXPECT_TRUE(w.vm.heap().in_elder(n1));
  Obj n2 = get_ref_field(n1, 8);
  Obj n3 = get_ref_field(n2, 8);
  EXPECT_EQ(get_field<std::int64_t>(n1, 0), 1);
  EXPECT_EQ(get_field<std::int64_t>(n2, 0), 2);
  EXPECT_EQ(get_field<std::int64_t>(n3, 0), 3);
  EXPECT_EQ(w.vm.heap().young_used(), 0u);
  w.vm.heap().verify_heap();
}

TEST(GcIncrementalTest, WriteBarrierKeepsHiddenObjectAlive) {
  World w(gc_config(true));
  GcRoot holder(w.thread, w.make_node(42, nullptr));
  w.vm.heap().collect();
  ASSERT_TRUE(w.vm.heap().in_elder(holder.get()));

  // Enough rooted work that the cycle needs several one-object slices.
  GcRoot chain(w.thread, nullptr);
  for (int i = 0; i < 16; ++i) chain.set(w.make_node(i, chain.get()));

  w.vm.heap().incremental_step();  // begin: holder is shaded as a root
  ASSERT_EQ(w.vm.heap().gc_phase(), GcPhase::kMarking);
  // Trace until holder itself has been blackened (children scanned).
  w.vm.heap().incremental_step();
  w.vm.heap().incremental_step();

  // Hide a new object behind the already-traced holder: only the write
  // barrier can tell the collector about it.
  Obj hidden = w.make_node(7, nullptr);
  w.vm.heap().store_ref_field(holder.get(), 8, hidden);
  hidden = nullptr;  // no root keeps it alive

  drive_to_idle(w.vm.heap());
  Obj survivor = get_ref_field(holder.get(), 8);
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(get_field<std::int64_t>(survivor, 0), 7);
  EXPECT_GE(w.vm.heap().stats().barrier_shades, 1u);
  w.vm.heap().verify_heap();
}

TEST(GcIncrementalTest, RemsetRepointsElderHolderAfterRelocation) {
  World w(gc_config(true));
  World baseline(gc_config(false));
  GcRoot holder(w.thread, w.make_node(1, nullptr));
  w.vm.heap().collect();
  ASSERT_TRUE(w.vm.heap().in_elder(holder.get()));

  // Elder -> young store while the collector is idle must still be
  // remembered: the next relocation's fixup only repoints remembered
  // holders, not the whole live elder generation.
  ASSERT_EQ(w.vm.heap().gc_phase(), GcPhase::kIdle);
  Obj target = w.make_node(55, nullptr);
  ASSERT_TRUE(w.vm.heap().in_young(target));
  w.vm.heap().store_ref_field(holder.get(), 8, target);
  EXPECT_GE(w.vm.heap().stats().remset_records, 1u);

  w.vm.heap().collect();
  Obj moved = get_ref_field(holder.get(), 8);
  ASSERT_NE(moved, nullptr);
  EXPECT_TRUE(w.vm.heap().in_elder(moved));
  EXPECT_EQ(get_field<std::int64_t>(moved, 0), 55);
  w.vm.heap().verify_heap();
}

TEST(GcIncrementalTest, YoungCyclesSkipElderYetForcedSweepReclaims) {
  World w(gc_config(true));
  GcRoot keep(w.thread, w.make_node(1, nullptr));
  GcRoot doomed(w.thread, w.make_node(2, nullptr));
  w.vm.heap().collect();
  ASSERT_TRUE(w.vm.heap().in_elder(keep.get()));
  ASSERT_TRUE(w.vm.heap().in_elder(doomed.get()));
  doomed.set(nullptr);

  // Unforced cycles off the sweep schedule are generational: they mark
  // only the young generation and must not reclaim (or trace) elder.
  const std::uint64_t young_before = w.vm.heap().stats().young_mark_cycles;
  for (int cycle = 0; cycle < 2; ++cycle) {
    w.vm.heap().incremental_step();
    drive_to_idle(w.vm.heap());
  }
  EXPECT_GE(w.vm.heap().stats().young_mark_cycles, young_before + 2);
  EXPECT_EQ(w.vm.heap().stats().elder_freed_objects, 0u);

  // A forced sweep upgrades the schedule to a full cycle: the unrooted
  // elder node goes, the rooted one stays.
  w.vm.heap().collect(/*force_elder_sweep=*/true);
  EXPECT_GE(w.vm.heap().stats().elder_freed_objects, 1u);
  ASSERT_NE(keep.get(), nullptr);
  EXPECT_EQ(get_field<std::int64_t>(keep.get(), 0), 1);
  w.vm.heap().verify_heap();
}

TEST(GcIncrementalTest, RemsetRootsYoungMarkingInGenerationalCycles) {
  World w(gc_config(true));
  GcRoot holder(w.thread, w.make_node(1, nullptr));
  w.vm.heap().collect();
  ASSERT_TRUE(w.vm.heap().in_elder(holder.get()));

  // Young node reachable ONLY through the elder holder: in a
  // generational cycle the elder graph is never traced, so survival
  // depends on the remembered set seeding the young mark.
  w.vm.heap().store_ref_field(holder.get(), 8, w.make_node(9, nullptr));
  GcRoot chain(w.thread, nullptr);
  for (int i = 0; i < 8; ++i) chain.set(w.make_node(i, chain.get()));

  w.vm.heap().incremental_step();
  ASSERT_EQ(w.vm.heap().gc_phase(), GcPhase::kMarking);
  drive_to_idle(w.vm.heap());

  EXPECT_GE(w.vm.heap().stats().young_mark_cycles, 2u);
  Obj survivor = get_ref_field(holder.get(), 8);
  ASSERT_NE(survivor, nullptr);
  EXPECT_TRUE(w.vm.heap().in_elder(survivor));
  EXPECT_EQ(get_field<std::int64_t>(survivor, 0), 9);
  w.vm.heap().verify_heap();
}

TEST(GcIncrementalTest, ConditionalPinHoldsAcrossMarkSlices) {
  World w(gc_config(true));
  GcRoot obj(w.thread, w.make_node(77, nullptr));
  auto req = std::make_shared<mpi::RequestState>();
  w.vm.heap().add_conditional_pin(obj.get(), req);
  const void* addr = obj.get();

  GcRoot chain(w.thread, nullptr);
  for (int i = 0; i < 16; ++i) chain.set(w.make_node(i, chain.get()));

  w.vm.heap().incremental_step();
  ASSERT_EQ(w.vm.heap().gc_phase(), GcPhase::kMarking);
  w.vm.heap().incremental_step();  // a slice boundary re-resolves the pin
  drive_to_idle(w.vm.heap());

  // Held through begin, every slice, and relocation: never moved, now
  // promoted in place (its region was donated around the pin).
  EXPECT_EQ(static_cast<const void*>(obj.get()), addr);
  EXPECT_TRUE(w.vm.heap().in_elder(obj.get()));
  EXPECT_EQ(get_field<std::int64_t>(obj.get(), 0), 77);
  EXPECT_GE(w.vm.heap().stats().conditional_checked, 3u);
  EXPECT_EQ(w.vm.heap().stats().conditional_dropped, 0u);
  EXPECT_EQ(w.vm.heap().conditional_pin_count(), 1u);

  req->mark_complete();
  w.vm.heap().collect();
  EXPECT_EQ(w.vm.heap().conditional_pin_count(), 0u);
  EXPECT_GE(w.vm.heap().stats().conditional_dropped, 1u);
  // Already elder, so dropping the pin does not move it.
  EXPECT_EQ(get_field<std::int64_t>(obj.get(), 0), 77);
  w.vm.heap().verify_heap();
}

TEST(GcIncrementalTest, PinDensityPromotesDenseRegionWholesale) {
  World w(gc_config(true));
  // Fill most of the nursery with rooted nodes and pin every one: each
  // fully occupied region is pinned and fully live, so relocation
  // promotes those regions wholesale in place instead of copying around
  // the pins.
  RootRange keep(w.thread);
  std::vector<const void*> addrs;
  std::int64_t i = 0;
  while (w.vm.heap().young_used() < 40 * 1024) {
    Obj n = w.make_node(i++, nullptr);
    keep.add(n);
    w.vm.heap().pin(n);
    addrs.push_back(n);
  }
  w.vm.heap().collect();
  EXPECT_GE(w.vm.heap().stats().regions_promoted_wholesale, 2u);
  EXPECT_GE(w.vm.heap().stats().wholesale_promoted_objects, keep.size() / 2);
  EXPECT_GE(w.vm.heap().donated_region_count(), 1u);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    EXPECT_EQ(static_cast<const void*>(keep.at(i)), addrs[i]);
    EXPECT_TRUE(w.vm.heap().in_elder(keep.at(i)));
    EXPECT_EQ(get_field<std::int64_t>(keep.at(i), 0),
              static_cast<std::int64_t>(i));
  }
  for (std::size_t i = 0; i < keep.size(); ++i) w.vm.heap().unpin(keep.at(i));
  w.vm.heap().verify_heap();
}

TEST(GcIncrementalTest, SparseRegionDonatesAroundPinAndIsRecycled) {
  World w(gc_config(true));
  GcRoot pinned(w.thread, w.make_node(9, nullptr));
  w.vm.heap().pin(pinned.get());
  const void* addr = pinned.get();
  // Mostly-garbage neighbourhood: the pinned region is sparse, so its
  // unpinned survivors evacuate and the region is donated around the pin.
  for (int i = 0; i < 64; ++i) w.make_node(i, nullptr);

  w.vm.heap().collect();
  EXPECT_GE(w.vm.heap().stats().regions_donated_sparse, 1u);
  EXPECT_GE(w.vm.heap().donated_region_count(), 1u);
  EXPECT_EQ(static_cast<const void*>(pinned.get()), addr);
  EXPECT_TRUE(w.vm.heap().in_elder(pinned.get()));
  EXPECT_GE(w.vm.heap().stats().dead_young_objects, 32u);

  // Donated regions return to the young free pool once the last resident
  // dies: unpin, unroot, collect with an elder sweep.
  w.vm.heap().unpin(pinned.get());
  pinned.set(nullptr);
  w.vm.heap().collect(/*force_elder_sweep=*/true);
  drive_to_idle(w.vm.heap());
  EXPECT_EQ(w.vm.heap().donated_region_count(), 0u);
  w.vm.heap().verify_heap();
}

TEST(GcIncrementalTest, PinStructuresMaintainedIncrementally) {
  World w(gc_config(true));
  Prng prng(0xF00Du);
  RootRange keep(w.thread);
  for (int i = 0; i < 24; ++i) keep.add(w.make_node(i, nullptr));

  std::unordered_map<Obj, int> expected;
  for (int round = 0; round < 200; ++round) {
    Obj obj = keep.at(prng.next_below(keep.size()));
    if (prng.next_bool(0.55)) {
      w.vm.heap().pin(obj);
      ++expected[obj];
    } else if (expected[obj] > 0) {
      w.vm.heap().unpin(obj);
      if (--expected[obj] == 0) expected.erase(obj);
    }
    if (round % 50 == 49) {
      w.vm.heap().collect();
      // verify_heap asserts the pin_set_ mirror and per-region pin
      // counts against the authoritative table.
      w.vm.heap().verify_heap();
    }
  }
  std::size_t distinct = 0;
  for (const auto& [obj, n] : expected) distinct += (n > 0) ? 1 : 0;
  EXPECT_EQ(w.vm.heap().pin_table_size(), distinct);
  for (const auto& [obj, n] : expected) {
    for (int i = 0; i < n; ++i) w.vm.heap().unpin(obj);
  }
  EXPECT_EQ(w.vm.heap().pin_table_size(), 0u);
  w.vm.heap().verify_heap();
}

TEST(GcIncrementalTest, AllocationPacingCollectsAndRecordsPauses) {
  World w(gc_config(true));
  // Pure allocation churn: pacing must start cycles, slice the marking,
  // and finish relocations without any explicit collect() call.
  GcRoot ring(w.thread, nullptr);
  for (int i = 0; i < 4000; ++i) {
    ring.set(w.make_node(i, i % 7 == 0 ? nullptr : ring.get()));
  }
  const GcStats& s = w.vm.heap().stats();
  EXPECT_GE(s.collections, 1u);
  EXPECT_GE(s.incremental_cycles, 1u);
  EXPECT_GE(s.mark_slices, 1u);
  EXPECT_GE(s.pause_hist.samples, s.mark_slices);
  EXPECT_LE(s.pause_hist.quantile_ns(0.5), s.pause_hist.quantile_ns(0.99));
  EXPECT_LE(s.pause_hist.quantile_ns(0.99), s.pause_hist.max_ns);
  EXPECT_EQ(s.pause_hist.quantile_ns(1.0), s.pause_hist.max_ns);
  EXPECT_LE(s.pause_hist.max_ns, s.pause_hist.total_ns);
  EXPECT_GT(s.mark_ns + s.relocate_ns, 0u);
  w.vm.heap().verify_heap();
}

/// The tentpole property: an identical seeded workload leaves the same
/// reachable set (structure and values) whether collections ran
/// incrementally or stop-the-world.
TEST(GcIncrementalTest, SeededWorkloadMatchesStopTheWorldReachableSet) {
  for (std::uint64_t seed : {1u, 42u, 0xBEEFu}) {
    World inc(gc_config(true));
    World stw(gc_config(false));
    constexpr std::size_t kSlots = 24;
    RootRange inc_roots(inc.thread);
    RootRange stw_roots(stw.thread);
    for (std::size_t i = 0; i < kSlots; ++i) {
      inc_roots.add(nullptr);
      stw_roots.add(nullptr);
    }

    // One PRNG per world, same seed: both see the identical op stream.
    Prng p1(seed), p2(seed);
    auto step = [&](World& w, RootRange& roots, Prng& prng) {
      const std::size_t slot = prng.next_below(kSlots);
      const double dice = prng.next_double();
      const auto value = static_cast<std::int64_t>(prng.next_u64() % 1000);
      if (dice < 0.55) {  // new node chained onto a random root
        roots[slot] = w.make_node(value, roots.at(prng.next_below(kSlots)));
      } else if (dice < 0.8) {  // mutate an existing edge (barriered)
        Obj holder = roots.at(slot);
        if (holder != nullptr) {
          w.vm.heap().store_ref_field(holder, 8,
                                      roots.at(prng.next_below(kSlots)));
        }
      } else if (dice < 0.9) {  // drop a root
        roots[slot] = nullptr;
      } else if (w.vm.heap().incremental_enabled()) {
        w.vm.heap().incremental_step();  // extra slice, inc world only
      }
    };

    for (int op = 0; op < 3000; ++op) {
      step(inc, inc_roots, p1);
      step(stw, stw_roots, p2);
    }
    // Quiesce both: finish any in-flight cycle, sweep, and compare.
    inc.vm.heap().collect(/*force_elder_sweep=*/true);
    stw.vm.heap().collect(/*force_elder_sweep=*/true);
    inc.vm.heap().verify_heap();
    stw.vm.heap().verify_heap();
    EXPECT_EQ(reachable_signature(inc_roots, kSlots),
              reachable_signature(stw_roots, kSlots))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace motor::vm
