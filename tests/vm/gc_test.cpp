#include <gtest/gtest.h>

#include "vm/handles.hpp"
#include "vm/vm.hpp"

namespace motor::vm {
namespace {

VmConfig small_heap_config(std::size_t young = 64 * 1024) {
  VmConfig c;
  c.profile = RuntimeProfile::uncosted();
  c.heap.young_bytes = young;
  return c;
}

class GcTest : public ::testing::Test {
 protected:
  GcTest() : vm_(small_heap_config()), thread_(vm_) {
    node_ = vm_.types()
                .define_class("Node")
                .field("value", ElementKind::kInt64)
                .ref_field("next", vm_.types().object_type(), true)
                .build();
    ints_ = vm_.types().primitive_array(ElementKind::kInt32);
  }

  Obj make_node(std::int64_t value, Obj next) {
    GcRoot next_root(thread_, next);
    Obj n = vm_.heap().alloc_object(node_);
    set_field(n, 0, value);
    set_ref_field(n, 8, next_root.get());
    return n;
  }

  Vm vm_;
  ManagedThread thread_;
  const MethodTable* node_;
  const MethodTable* ints_;
};

TEST_F(GcTest, CollectPromotesRootedObjects) {
  GcRoot keep(thread_, make_node(7, nullptr));
  EXPECT_TRUE(vm_.heap().in_young(keep.get()));
  vm_.heap().collect();
  // Live young objects are copied (promoted) to the elder generation.
  EXPECT_FALSE(vm_.heap().in_young(keep.get()));
  EXPECT_TRUE(vm_.heap().in_elder(keep.get()));
  EXPECT_EQ(get_field<std::int64_t>(keep.get(), 0), 7);
  EXPECT_EQ(vm_.heap().stats().promoted_objects, 1u);
}

TEST_F(GcTest, UnreachableYoungObjectsDie) {
  make_node(1, nullptr);  // no root
  make_node(2, nullptr);
  const std::size_t used_before = vm_.heap().young_used();
  EXPECT_GT(used_before, 0u);
  vm_.heap().collect();
  EXPECT_EQ(vm_.heap().young_used(), 0u);
  EXPECT_EQ(vm_.heap().stats().dead_young_objects, 2u);
  EXPECT_EQ(vm_.heap().stats().promoted_objects, 0u);
}

TEST_F(GcTest, ReferencesFixedUpAfterPromotion) {
  GcRoot head(thread_, make_node(1, make_node(2, make_node(3, nullptr))));
  vm_.heap().collect();
  Obj n1 = head.get();
  Obj n2 = get_ref_field(n1, 8);
  Obj n3 = get_ref_field(n2, 8);
  ASSERT_NE(n2, nullptr);
  ASSERT_NE(n3, nullptr);
  EXPECT_EQ(get_field<std::int64_t>(n1, 0), 1);
  EXPECT_EQ(get_field<std::int64_t>(n2, 0), 2);
  EXPECT_EQ(get_field<std::int64_t>(n3, 0), 3);
  EXPECT_EQ(get_ref_field(n3, 8), nullptr);
  vm_.heap().verify_heap();
}

TEST_F(GcTest, CyclesAreCollectedAndPreserved) {
  // Preserved while rooted...
  GcRoot a(thread_, make_node(1, nullptr));
  {
    GcRoot b(thread_, make_node(2, a.get()));
    set_ref_field(a.get(), 8, b.get());  // a <-> b cycle
    vm_.heap().collect();
    EXPECT_EQ(get_field<std::int64_t>(get_ref_field(a.get(), 8), 0), 2);
    EXPECT_EQ(get_ref_field(get_ref_field(a.get(), 8), 8), a.get());
  }
  // ...and collected once unreferenced (cycle does not keep itself alive).
  const auto elder_before = vm_.heap().elder_object_count();
  a.set(nullptr);
  vm_.heap().collect(/*force_elder_sweep=*/true);
  EXPECT_LT(vm_.heap().elder_object_count(), elder_before);
}

TEST_F(GcTest, AllocationTriggersCollection) {
  GcRoot keep(thread_, vm_.heap().alloc_array(ints_, 1000));
  const auto before = vm_.heap().stats().collections;
  // Allocate far beyond the 64 KiB nursery: collections must kick in.
  for (int i = 0; i < 100; ++i) {
    vm_.heap().alloc_array(ints_, 500);  // ~2 KB each, unrooted
  }
  EXPECT_GT(vm_.heap().stats().collections, before);
  // The rooted array survived every collection intact.
  EXPECT_EQ(array_length(keep.get()), 1000);
}

TEST_F(GcTest, ElderSweepFreesUnreachablePromoted) {
  {
    GcRoot tmp(thread_, make_node(5, nullptr));
    vm_.heap().collect();  // promotes tmp's node
    EXPECT_TRUE(vm_.heap().in_elder(tmp.get()));
  }
  const auto freed_before = vm_.heap().stats().elder_freed_objects;
  vm_.heap().collect(/*force_elder_sweep=*/true);
  EXPECT_GT(vm_.heap().stats().elder_freed_objects, freed_before);
}

TEST_F(GcTest, ElderSweptLessFrequentlyThanYoung) {
  // Default interval is 4: three collections -> no sweep yet.
  VmConfig cfg = small_heap_config();
  cfg.heap.elder_sweep_interval = 4;
  Vm vm(cfg);
  ManagedThread thread(vm);
  vm.heap().collect();
  vm.heap().collect();
  vm.heap().collect();
  EXPECT_EQ(vm.heap().stats().elder_sweeps, 0u);
  vm.heap().collect();
  EXPECT_EQ(vm.heap().stats().elder_sweeps, 1u);
}

TEST_F(GcTest, InteriorGraphReachableOnlyViaArray) {
  const MethodTable* arr_mt = vm_.types().ref_array(node_);
  GcRoot arr(thread_, vm_.heap().alloc_array(arr_mt, 4));
  for (int i = 0; i < 4; ++i) {
    Obj n = make_node(i, nullptr);
    set_ref_element(arr.get(), i, n);
  }
  vm_.heap().collect();
  for (int i = 0; i < 4; ++i) {
    Obj n = get_ref_element(arr.get(), i);
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(get_field<std::int64_t>(n, 0), i);
  }
  vm_.heap().verify_heap();
}

TEST_F(GcTest, StaticRefSlotsAreRoots) {
  MethodTable* node = const_cast<MethodTable*>(node_);
  Obj kept = make_node(99, nullptr);
  node->static_ref_slots().push_back(kept);
  vm_.heap().collect();
  Obj after = static_cast<Obj>(node->static_ref_slots()[0]);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(get_field<std::int64_t>(after, 0), 99);
  EXPECT_TRUE(vm_.heap().in_elder(after));
  node->static_ref_slots().clear();
}

TEST_F(GcTest, RootRangeProtectsGrowingTable) {
  RootRange table(thread_);
  for (int i = 0; i < 50; ++i) {
    table.add(make_node(i, nullptr));
    if (i % 10 == 0) vm_.heap().collect();
  }
  vm_.heap().collect();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(get_field<std::int64_t>(table.at(static_cast<std::size_t>(i)), 0),
              i);
  }
}

TEST_F(GcTest, VerifyHeapPassesOnHealthyHeap) {
  GcRoot a(thread_, make_node(1, make_node(2, nullptr)));
  vm_.heap().verify_heap();
  vm_.heap().collect();
  vm_.heap().verify_heap();
}

TEST_F(GcTest, GcHookSeesEpoch) {
  static std::uint64_t observed = 0;
  vm_.heap().add_gc_hook(
      [](void*, std::uint64_t epoch) { observed = epoch; }, nullptr);
  vm_.heap().collect();
  EXPECT_EQ(observed, vm_.heap().epoch());
  EXPECT_GE(observed, 1u);
}

TEST_F(GcTest, PauseTimeAccounted) {
  vm_.heap().collect();
  EXPECT_GT(vm_.heap().stats().total_pause_ns, 0u);
}

}  // namespace
}  // namespace motor::vm
