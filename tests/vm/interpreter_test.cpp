#include "vm/interpreter.hpp"

#include <gtest/gtest.h>

#include "vm/assembler.hpp"
#include "vm/vm.hpp"

namespace motor::vm {
namespace {

class InterpreterTest : public ::testing::Test {
 protected:
  InterpreterTest() : vm_(uncosted()), thread_(vm_), interp_(vm_, thread_) {}
  static VmConfig uncosted() {
    VmConfig c;
    c.profile = RuntimeProfile::uncosted();
    c.heap.young_bytes = 64 * 1024;
    return c;
  }

  Value run_main(Program& program, std::span<const Value> args = {}) {
    return interp_.invoke(program, program.method_named("main"), args);
  }

  Vm vm_;
  ManagedThread thread_;
  Interpreter interp_;
};

TEST_F(InterpreterTest, ArithmeticExpression) {
  Program p;
  // (3 + 4) * 5 - 2 = 33
  p.add_method(MethodAssembler("main", 0, 0)
                   .ldc_i4(3)
                   .ldc_i4(4)
                   .add()
                   .ldc_i4(5)
                   .mul()
                   .ldc_i4(2)
                   .sub()
                   .ret()
                   .build());
  EXPECT_EQ(run_main(p).i32, 33);
}

TEST_F(InterpreterTest, FloatingPointAndConversion) {
  Program p;
  p.add_method(MethodAssembler("main", 0, 0)
                   .ldc_r8(2.5)
                   .ldc_i4(4)
                   .conv_r8()
                   .mul()
                   .conv_i4()
                   .ret()
                   .build());
  EXPECT_EQ(run_main(p).i32, 10);
}

TEST_F(InterpreterTest, LoopComputesSum) {
  // sum(1..n) with a backward branch (exercises the GC safepoint poll).
  Program p;
  MethodAssembler a("main", 1, 2);  // arg0 = n; loc1 = i, loc2 = sum
  const int loop = a.new_label();
  const int done = a.new_label();
  a.ldc_i4(1).stloc(1);
  a.ldc_i4(0).stloc(2);
  a.bind(loop);
  a.ldloc(1).ldloc(0).cgt().brtrue(done);
  a.ldloc(2).ldloc(1).add().stloc(2);
  a.ldloc(1).ldc_i4(1).add().stloc(1);
  a.br(loop);
  a.bind(done);
  a.ldloc(2).ret();
  p.add_method(a.build());

  const Value n = Value::from_i32(100);
  EXPECT_EQ(run_main(p, std::span(&n, 1)).i32, 5050);
  EXPECT_GE(vm_.safepoints().polls(), 100u);  // polled on back edges
}

TEST_F(InterpreterTest, MethodCallsAndRecursion) {
  Program p;
  // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
  MethodAssembler fib("fib", 1, 0);
  const int base = fib.new_label();
  fib.ldloc(0).ldc_i4(2).clt().brtrue(base);
  fib.ldloc(0).ldc_i4(1).sub().call(0);
  fib.ldloc(0).ldc_i4(2).sub().call(0);
  fib.add().ret();
  fib.bind(base).ldloc(0).ret();
  p.add_method(fib.build());  // index 0

  MethodAssembler main("main", 0, 0);
  main.ldc_i4(12).call(0).ret();
  p.add_method(main.build());

  EXPECT_EQ(run_main(p).i32, 144);
}

TEST_F(InterpreterTest, ObjectFieldsViaBytecode) {
  const MethodTable* point = vm_.types()
                                 .define_class("Point")
                                 .field("x", ElementKind::kInt32)
                                 .field("y", ElementKind::kInt32)
                                 .build();
  Program p;
  const int point_idx = p.add_type(point);
  MethodAssembler a("main", 0, 1);
  a.newobj(point_idx).stloc(0);
  a.ldloc(0).ldc_i4(11).stfld(*point->field_named("x"));
  a.ldloc(0).ldc_i4(31).stfld(*point->field_named("y"));
  a.ldloc(0).ldfld(*point->field_named("x"));
  a.ldloc(0).ldfld(*point->field_named("y"));
  a.add().ret();
  p.add_method(a.build());
  EXPECT_EQ(run_main(p).i32, 42);
}

TEST_F(InterpreterTest, ArraysViaBytecode) {
  const MethodTable* ints = vm_.types().primitive_array(ElementKind::kInt32);
  Program p;
  const int arr_idx = p.add_type(ints);
  // arr = new int[10]; arr[3] = 7; arr[4] = arr[3] * 2; return arr[4] + len
  MethodAssembler a("main", 0, 1);
  a.ldc_i4(10).newarr(arr_idx).stloc(0);
  a.ldloc(0).ldc_i4(3).ldc_i4(7).stelem();
  a.ldloc(0).ldc_i4(4);
  a.ldloc(0).ldc_i4(3).ldelem().ldc_i4(2).mul();
  a.stelem();
  a.ldloc(0).ldc_i4(4).ldelem().conv_i8();
  a.ldloc(0).ldlen().add().conv_i4().ret();
  p.add_method(a.build());
  EXPECT_EQ(run_main(p).i32, 24);
}

TEST_F(InterpreterTest, AllocationLoopSurvivesCollections) {
  // Allocate ~200 KB of arrays in a 64 KiB nursery while keeping one live
  // in a local: locals are precise roots, so the value must survive GCs.
  const MethodTable* ints = vm_.types().primitive_array(ElementKind::kInt32);
  Program p;
  const int arr_idx = p.add_type(ints);
  MethodAssembler a("main", 0, 3);  // loc0 = keeper, loc1 = i, loc2 = tmp
  const int loop = a.new_label();
  const int done = a.new_label();
  a.ldc_i4(64).newarr(arr_idx).stloc(0);
  a.ldloc(0).ldc_i4(0).ldc_i4(1234).stelem();
  a.ldc_i4(0).stloc(1);
  a.bind(loop);
  a.ldloc(1).ldc_i4(200).cge().brtrue(done);
  a.ldc_i4(256).newarr(arr_idx).stloc(2);  // garbage
  a.ldloc(1).ldc_i4(1).add().stloc(1);
  a.br(loop);
  a.bind(done);
  a.ldloc(0).ldc_i4(0).ldelem().ret();
  p.add_method(a.build());

  EXPECT_EQ(run_main(p).i32, 1234);
  EXPECT_GT(vm_.heap().stats().collections, 0u);
}

TEST_F(InterpreterTest, FCallDispatchFromBytecode) {
  const int fcall_idx = vm_.fcalls().register_fcall(
      "Test.AddMul", [](Vm&, ManagedThread&, std::span<const Value> args) {
        return Value::from_i32((args[0].i32 + args[1].i32) * args[2].i32);
      });
  Program p;
  MethodAssembler a("main", 0, 0);
  a.ldc_i4(2).ldc_i4(3).ldc_i4(4).call_native(fcall_idx, 3).ret();
  p.add_method(a.build());
  EXPECT_EQ(run_main(p).i32, 20);
  EXPECT_EQ(vm_.fcalls().calls(), 1u);
}

TEST_F(InterpreterTest, DivideByZeroFatals) {
  Program p;
  p.add_method(MethodAssembler("main", 0, 0)
                   .ldc_i4(1)
                   .ldc_i4(0)
                   .div()
                   .ret()
                   .build());
  EXPECT_THROW(run_main(p), FatalError);
}

TEST_F(InterpreterTest, NullFieldAccessFatals) {
  const MethodTable* point =
      vm_.types().define_class("NP").field("x", ElementKind::kInt32).build();
  Program p;
  MethodAssembler a("main", 0, 0);
  a.ldnull().ldfld(*point->field_named("x")).ret();
  p.add_method(a.build());
  EXPECT_THROW(run_main(p), FatalError);
}

TEST_F(InterpreterTest, ArrayBoundsChecked) {
  const MethodTable* ints = vm_.types().primitive_array(ElementKind::kInt32);
  Program p;
  const int arr_idx = p.add_type(ints);
  MethodAssembler a("main", 0, 1);
  a.ldc_i4(4).newarr(arr_idx).stloc(0);
  a.ldloc(0).ldc_i4(4).ldelem().ret();  // index == length
  p.add_method(a.build());
  EXPECT_THROW(run_main(p), FatalError);
}

TEST_F(InterpreterTest, InfiniteRecursionOverflows) {
  Program p;
  MethodAssembler rec("rec", 0, 0);
  rec.call(0).ret();
  p.add_method(rec.build());
  MethodAssembler main("main", 0, 0);
  main.call(0).ret();
  p.add_method(main.build());
  EXPECT_THROW(interp_.invoke(p, 1, {}), FatalError);
}

TEST_F(InterpreterTest, UnboundLabelFatalsAtBuild) {
  MethodAssembler a("broken", 0, 0);
  const int label = a.new_label();
  a.br(label);
  EXPECT_THROW(a.build(), FatalError);
}

}  // namespace
}  // namespace motor::vm
