#include "vm/object.hpp"

#include <gtest/gtest.h>

#include "vm/handles.hpp"
#include "vm/vm.hpp"

namespace motor::vm {
namespace {

class ObjectTest : public ::testing::Test {
 protected:
  ObjectTest() : vm_(uncosted()), thread_(vm_) {}
  static VmConfig uncosted() {
    VmConfig c;
    c.profile = RuntimeProfile::uncosted();
    return c;
  }
  Vm vm_;
  ManagedThread thread_;
};

TEST_F(ObjectTest, PlainObjectLayout) {
  const MethodTable* mt = vm_.types()
                              .define_class("P")
                              .field("a", ElementKind::kInt32)
                              .field("b", ElementKind::kDouble)
                              .build();
  Obj obj = vm_.heap().alloc_object(mt);
  EXPECT_EQ(obj_mt(obj), mt);
  EXPECT_EQ(object_total_bytes(obj), kHeaderBytes + 16);

  set_field<std::int32_t>(obj, mt->field_named("a")->offset(), 42);
  set_field<double>(obj, mt->field_named("b")->offset(), 1.5);
  EXPECT_EQ((get_field<std::int32_t>(obj, 0)), 42);
  EXPECT_DOUBLE_EQ(get_field<double>(obj, 8), 1.5);
}

TEST_F(ObjectTest, FreshObjectIsZeroed) {
  const MethodTable* mt = vm_.types()
                              .define_class("Z")
                              .field("x", ElementKind::kInt64)
                              .ref_field("r", vm_.types().object_type())
                              .build();
  Obj obj = vm_.heap().alloc_object(mt);
  EXPECT_EQ(get_field<std::int64_t>(obj, 0), 0);
  EXPECT_EQ(get_ref_field(obj, 8), nullptr);
}

TEST_F(ObjectTest, Rank1ArrayLayout) {
  const MethodTable* mt = vm_.types().primitive_array(ElementKind::kInt32);
  Obj arr = vm_.heap().alloc_array(mt, 10);
  EXPECT_EQ(array_length(arr), 10);
  EXPECT_EQ(array_dim(arr, 0), 10);
  EXPECT_EQ(array_payload_bytes(arr), 40u);
  EXPECT_EQ(object_total_bytes(arr), kHeaderBytes + 8 + 40);

  for (std::int64_t i = 0; i < 10; ++i) {
    set_element<std::int32_t>(arr, i, static_cast<std::int32_t>(i * i));
  }
  EXPECT_EQ((get_element<std::int32_t>(arr, 7)), 49);
}

TEST_F(ObjectTest, MultidimensionalArrayIsOneContiguousObject) {
  // The CLI feature the paper highlights against Java's arrays-of-arrays.
  const MethodTable* mt = vm_.types().primitive_array(ElementKind::kDouble, 2);
  Obj arr = vm_.heap().alloc_md_array(mt, {3, 4});
  EXPECT_EQ(array_length(arr), 12);
  EXPECT_EQ(array_dim(arr, 0), 3);
  EXPECT_EQ(array_dim(arr, 1), 4);
  EXPECT_EQ(array_payload_bytes(arr), 96u);

  // Row-major fill through the flat payload.
  for (std::int64_t i = 0; i < 12; ++i) {
    set_element<double>(arr, i, static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(get_element<double>(arr, 2 * 4 + 3), 11.0);
}

TEST_F(ObjectTest, ZeroLengthArray) {
  const MethodTable* mt = vm_.types().primitive_array(ElementKind::kUInt8);
  Obj arr = vm_.heap().alloc_array(mt, 0);
  EXPECT_EQ(array_length(arr), 0);
  EXPECT_EQ(array_payload_bytes(arr), 0u);
}

TEST_F(ObjectTest, RefArrayElements) {
  const MethodTable* node = vm_.types().define_class("RN").build();
  const MethodTable* arr_mt = vm_.types().ref_array(node);
  GcRoot arr(thread_, vm_.heap().alloc_array(arr_mt, 3));
  GcRoot n0(thread_, vm_.heap().alloc_object(node));
  set_ref_element(arr.get(), 0, n0.get());
  EXPECT_EQ(get_ref_element(arr.get(), 0), n0.get());
  EXPECT_EQ(get_ref_element(arr.get(), 1), nullptr);
}

TEST_F(ObjectTest, HeaderMarkBitsRoundTrip) {
  const MethodTable* mt = vm_.types().define_class("H").build();
  Obj obj = vm_.heap().alloc_object(mt);
  EXPECT_FALSE(is_marked(obj));
  set_mark(obj);
  EXPECT_TRUE(is_marked(obj));
  EXPECT_EQ(obj_mt(obj), mt);  // mt still readable through the mark bit
  clear_mark(obj);
  EXPECT_FALSE(is_marked(obj));
}

TEST_F(ObjectTest, ForwardingPointerRoundTrip) {
  const MethodTable* mt = vm_.types().define_class("F").build();
  Obj a = vm_.heap().alloc_object(mt);
  Obj b = vm_.heap().alloc_object(mt);
  EXPECT_FALSE(is_forwarded(a));
  set_forwarding(a, b);
  EXPECT_TRUE(is_forwarded(a));
  EXPECT_EQ(forwarding_target(a), b);
}

TEST_F(ObjectTest, NegativeArrayLengthFatals) {
  const MethodTable* mt = vm_.types().primitive_array(ElementKind::kInt32);
  EXPECT_THROW(vm_.heap().alloc_array(mt, -1), FatalError);
}

TEST_F(ObjectTest, LargeObjectGoesStraightToElder) {
  const MethodTable* mt = vm_.types().primitive_array(ElementKind::kUInt8);
  // Default nursery is 1 MiB with a 0.25 large-object fraction.
  Obj big = vm_.heap().alloc_array(mt, 512 * 1024);
  EXPECT_FALSE(vm_.heap().in_young(big));
  EXPECT_TRUE(vm_.heap().in_elder(big));
}

}  // namespace
}  // namespace motor::vm
