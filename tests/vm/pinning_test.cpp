// Pinning semantics: explicit pins, young-block donation, and Motor's
// conditional (request-status-dependent) pins — the §4.3/§5.2/§7.4
// mechanisms.
#include <gtest/gtest.h>

#include "vm/handles.hpp"
#include "vm/vm.hpp"

namespace motor::vm {
namespace {

VmConfig test_config() {
  VmConfig c;
  c.profile = RuntimeProfile::uncosted();
  c.heap.young_bytes = 64 * 1024;
  c.heap.elder_sweep_interval = 1;
  return c;
}

class PinningTest : public ::testing::Test {
 protected:
  PinningTest() : vm_(test_config()), thread_(vm_) {
    ints_ = vm_.types().primitive_array(ElementKind::kInt32);
  }

  Obj make_array(int n) {
    Obj arr = vm_.heap().alloc_array(ints_, n);
    for (int i = 0; i < n; ++i) set_element<std::int32_t>(arr, i, i * 3);
    return arr;
  }

  Vm vm_;
  ManagedThread thread_;
  const MethodTable* ints_;
};

TEST_F(PinningTest, PinnedObjectDoesNotMove) {
  GcRoot arr(thread_, make_array(16));
  Obj before = arr.get();
  ASSERT_TRUE(vm_.heap().in_young(before));
  vm_.heap().pin(before);
  vm_.heap().collect();
  EXPECT_EQ(arr.get(), before);  // same address: not moved
  EXPECT_EQ(get_element<std::int32_t>(arr.get(), 5), 15);
  vm_.heap().unpin(before);
}

TEST_F(PinningTest, UnpinnedObjectMovesUnderSamePressure) {
  GcRoot arr(thread_, make_array(16));
  Obj before = arr.get();
  vm_.heap().collect();
  EXPECT_NE(arr.get(), before);  // promoted == moved
  EXPECT_EQ(get_element<std::int32_t>(arr.get(), 5), 15);
}

TEST_F(PinningTest, PinnedSurvivorDonatesYoungBlock) {
  GcRoot pinned(thread_, make_array(8));
  GcRoot moved(thread_, make_array(8));
  vm_.heap().pin(pinned.get());
  const Obj pinned_before = pinned.get();

  vm_.heap().collect();

  // "The entire block of younger generational memory is assigned to the
  // elder generation" — the pinned object keeps its address but is now
  // elder; the unpinned one was copied out; the nursery is fresh.
  EXPECT_EQ(vm_.heap().stats().young_blocks_donated, 1u);
  EXPECT_EQ(pinned.get(), pinned_before);
  EXPECT_TRUE(vm_.heap().in_elder(pinned.get()));
  EXPECT_FALSE(vm_.heap().in_young(pinned.get()));
  EXPECT_NE(moved.get(), pinned_before);
  EXPECT_EQ(vm_.heap().young_used(), 0u);
  vm_.heap().unpin(pinned_before);

  // The donated block's pinned resident is collectible once dead.
  pinned.set(nullptr);
  vm_.heap().collect(/*force_elder_sweep=*/true);
  vm_.heap().verify_heap();
}

TEST_F(PinningTest, NoDonationWithoutPinnedSurvivors) {
  GcRoot arr(thread_, make_array(8));
  vm_.heap().collect();
  EXPECT_EQ(vm_.heap().stats().young_blocks_donated, 0u);
}

TEST_F(PinningTest, PinIsCounted) {
  GcRoot arr(thread_, make_array(4));
  vm_.heap().pin(arr.get());
  vm_.heap().pin(arr.get());
  vm_.heap().unpin(arr.get());
  EXPECT_TRUE(vm_.heap().is_pinned(arr.get()));  // one pin still held
  vm_.heap().unpin(arr.get());
  EXPECT_FALSE(vm_.heap().is_pinned(arr.get()));
}

TEST_F(PinningTest, UnpinWithoutPinFatals) {
  GcRoot arr(thread_, make_array(4));
  EXPECT_THROW(vm_.heap().unpin(arr.get()), FatalError);
}

TEST_F(PinningTest, PinnedObjectIsARoot) {
  Obj arr = make_array(4);  // deliberately NOT rooted
  vm_.heap().pin(arr);
  vm_.heap().collect();
  // Alive purely via the pin table (the transport is reading it).
  EXPECT_EQ(get_element<std::int32_t>(arr, 2), 6);
  vm_.heap().unpin(arr);
}

TEST_F(PinningTest, ConditionalPinHoldsWhileRequestIncomplete) {
  GcRoot arr(thread_, make_array(16));
  Obj before = arr.get();
  auto req = std::make_shared<mpi::RequestState>();  // incomplete

  vm_.heap().add_conditional_pin(before, req);
  vm_.heap().collect();
  // Request incomplete at mark time -> treated as pinned, not moved.
  EXPECT_EQ(arr.get(), before);
  EXPECT_EQ(vm_.heap().conditional_pin_count(), 1u);
  EXPECT_EQ(vm_.heap().stats().conditional_checked, 1u);
  EXPECT_EQ(vm_.heap().stats().conditional_dropped, 0u);
}

TEST_F(PinningTest, ConditionalPinDroppedOnceRequestCompletes) {
  GcRoot arr(thread_, make_array(16));
  auto req = std::make_shared<mpi::RequestState>();
  vm_.heap().add_conditional_pin(arr.get(), req);

  req->mark_complete();
  const Obj before = arr.get();
  vm_.heap().collect();
  // "The pinning request is no longer necessary and is disregarded": the
  // entry is retired and the object is free to move again.
  EXPECT_EQ(vm_.heap().conditional_pin_count(), 0u);
  EXPECT_EQ(vm_.heap().stats().conditional_dropped, 1u);
  EXPECT_NE(arr.get(), before);  // moved normally
}

TEST_F(PinningTest, ConditionalPinLifecycleAcrossCollections) {
  GcRoot arr(thread_, make_array(16));
  auto req = std::make_shared<mpi::RequestState>();
  vm_.heap().add_conditional_pin(arr.get(), req);

  vm_.heap().collect();  // holds (donation happens)
  vm_.heap().collect();  // still incomplete, still held
  EXPECT_EQ(vm_.heap().conditional_pin_count(), 1u);
  EXPECT_EQ(vm_.heap().stats().conditional_checked, 2u);

  req->mark_complete();
  vm_.heap().collect();
  EXPECT_EQ(vm_.heap().conditional_pin_count(), 0u);
}

TEST_F(PinningTest, NoUnpinCallEverNeededForConditionalPins) {
  // The §4.3 claim: non-blocking operations need no explicit unpin. After
  // the request completes and one collection passes, the pin table is
  // clean and the heap verifies.
  GcRoot arr(thread_, make_array(8));
  auto req = std::make_shared<mpi::RequestState>();
  vm_.heap().add_conditional_pin(arr.get(), req);
  vm_.heap().collect();
  req->mark_complete();
  vm_.heap().collect();
  EXPECT_EQ(vm_.heap().conditional_pin_count(), 0u);
  EXPECT_EQ(vm_.heap().pin_table_size(), 0u);
  vm_.heap().verify_heap();
}

TEST_F(PinningTest, PinSurvivesRepeatedCollectionsAcrossRetryWindow) {
  // The reliability layer's retransmit window holds raw span pointers into
  // heap arrays for many progress polls — potentially across several GCs
  // triggered by the application thread between retries. A pin taken once
  // must hold the backing bytes perfectly still for that whole window.
  GcRoot arr(thread_, make_array(64));
  const Obj addr = arr.get();
  const std::byte* data = array_data(addr);
  ASSERT_TRUE(vm_.heap().in_young(addr));
  vm_.heap().pin(addr);

  for (int retry = 0; retry < 8; ++retry) {
    // Allocation pressure between "retries": enough garbage to churn the
    // nursery and force real copying work at each collection.
    for (int i = 0; i < 20; ++i) {
      (void)vm_.heap().alloc_array(ints_, 100);
    }
    vm_.heap().collect();
    ASSERT_EQ(arr.get(), addr) << "retry " << retry << ": object moved";
    ASSERT_EQ(array_data(arr.get()), data)
        << "retry " << retry << ": backing storage moved";
    for (int i = 0; i < 64; i += 9) {
      ASSERT_EQ(get_element<std::int32_t>(arr.get(), i), i * 3)
          << "retry " << retry << ": contents corrupted at " << i;
    }
  }

  vm_.heap().unpin(addr);
  vm_.heap().collect();
  EXPECT_EQ(vm_.heap().pin_table_size(), 0u);
  vm_.heap().verify_heap();
}

TEST_F(PinningTest, ElderObjectsNeverMoveEvenUnpinned) {
  GcRoot arr(thread_, make_array(16));
  vm_.heap().collect();  // promote
  const Obj elder_addr = arr.get();
  ASSERT_TRUE(vm_.heap().in_elder(elder_addr));
  vm_.heap().collect();
  vm_.heap().collect();
  EXPECT_EQ(arr.get(), elder_addr);  // elder generation is not compacted
}

}  // namespace
}  // namespace motor::vm
