// Stop-the-world coordination: parking, native regions, and interleaved
// collection requests across threads.
#include "vm/safepoint.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "pal/thread.hpp"

namespace motor::vm {
namespace {

TEST(SafepointTest, SingleThreadCollectsImmediately) {
  SafepointController sp;
  sp.register_thread();
  bool ran = false;
  sp.run_stop_the_world([&] { ran = true; });
  EXPECT_TRUE(ran);
  sp.unregister_thread();
}

TEST(SafepointTest, PollsAreCounted) {
  SafepointController sp;
  sp.register_thread();
  const auto before = sp.polls();
  for (int i = 0; i < 10; ++i) sp.poll();
  EXPECT_EQ(sp.polls(), before + 10);
  sp.unregister_thread();
}

TEST(SafepointTest, CollectorWaitsForPollingThread) {
  SafepointController sp;
  sp.register_thread();  // collector (this thread)

  std::atomic<bool> worker_started{false};
  std::atomic<bool> stop_worker{false};
  std::atomic<int> gc_runs{0};
  pal::Thread worker("mutator", [&] {
    sp.register_thread();
    worker_started = true;
    while (!stop_worker) {
      sp.poll();  // the worker's safepoints let collections proceed
      pal::Thread::yield();
    }
    sp.unregister_thread();
  });

  while (!worker_started) pal::Thread::yield();
  for (int i = 0; i < 5; ++i) {
    sp.run_stop_the_world([&] { ++gc_runs; });
  }
  EXPECT_EQ(gc_runs.load(), 5);
  stop_worker = true;
  worker.join();
  sp.unregister_thread();
}

TEST(SafepointTest, NativeRegionCountsAsParked) {
  SafepointController sp;
  sp.register_thread();

  std::atomic<bool> in_native{false};
  std::atomic<bool> release{false};
  pal::Thread native("native", [&] {
    sp.register_thread();
    {
      NativeRegion region(sp);
      in_native = true;
      while (!release) pal::Thread::yield();
      // leave_native (in ~NativeRegion) must block during a collection.
    }
    sp.unregister_thread();
  });

  while (!in_native) pal::Thread::yield();
  bool ran = false;
  sp.run_stop_the_world([&] { ran = true; });  // no deadlock
  EXPECT_TRUE(ran);
  release = true;
  native.join();
  sp.unregister_thread();
}

TEST(SafepointTest, ConcurrentCollectionRequestsSerialize) {
  SafepointController sp;
  sp.register_thread();
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::atomic<bool> start{false};

  pal::Thread other("requester", [&] {
    sp.register_thread();
    while (!start) sp.poll();
    for (int i = 0; i < 20; ++i) {
      sp.run_stop_the_world([&] {
        const int now = ++inside;
        int seen = max_inside.load();
        while (seen < now && !max_inside.compare_exchange_weak(seen, now)) {
        }
        --inside;
      });
      sp.poll();
    }
    sp.unregister_thread();
  });

  start = true;
  for (int i = 0; i < 20; ++i) {
    sp.run_stop_the_world([&] {
      const int now = ++inside;
      int seen = max_inside.load();
      while (seen < now && !max_inside.compare_exchange_weak(seen, now)) {
      }
      --inside;
    });
    sp.poll();
  }
  {
    // The requester thread may still be collecting: joining is a blocking
    // native wait, so park in preemptive mode for its remaining cycles.
    NativeRegion native(sp);
    other.join();
  }
  EXPECT_EQ(max_inside.load(), 1);  // never two collections at once
  sp.unregister_thread();
}

}  // namespace
}  // namespace motor::vm
