// The standard-runtime serializers: CLI binary (atomic flat rep, opt-out)
// and Java-style (recursive, class descriptors, stack-overflow behaviour).
#include <gtest/gtest.h>

#include "vm/cli_serializer.hpp"
#include "vm/handles.hpp"
#include "vm/java_serializer.hpp"
#include "vm/vm.hpp"

namespace motor::vm {
namespace {

VmConfig uncosted_config() {
  VmConfig c;
  c.profile = RuntimeProfile::uncosted();
  c.heap.young_bytes = 1 << 20;
  return c;
}

class SerializerFixture : public ::testing::Test {
 protected:
  SerializerFixture() : vm_(uncosted_config()), thread_(vm_) {
    node_ = vm_.types()
                .define_class("LinkedArray")
                .ref_field("array", vm_.types().primitive_array(
                                        ElementKind::kInt32))
                .ref_field("next", vm_.types().object_type())
                .field("id", ElementKind::kInt32)
                .build();
    ints_ = vm_.types().primitive_array(ElementKind::kInt32);
  }

  /// Linked list of `n` nodes, node i carrying an int[3] = {i, i+1, i+2}.
  Obj make_list(int n) {
    GcRoot head(thread_, nullptr);
    for (int i = n - 1; i >= 0; --i) {
      GcRoot arr(thread_, vm_.heap().alloc_array(ints_, 3));
      for (int k = 0; k < 3; ++k) {
        set_element<std::int32_t>(arr.get(), k, i + k);
      }
      Obj node = vm_.heap().alloc_object(node_);
      set_ref_field(node, node_->field_named("array")->offset(), arr.get());
      set_ref_field(node, node_->field_named("next")->offset(), head.get());
      set_field<std::int32_t>(node, node_->field_named("id")->offset(), i);
      head.set(node);
    }
    return head.get();
  }

  void verify_list(Obj head, int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_NE(head, nullptr) << "node " << i;
      EXPECT_EQ(
          (get_field<std::int32_t>(head, node_->field_named("id")->offset())),
          i);
      Obj arr = get_ref_field(head, node_->field_named("array")->offset());
      ASSERT_NE(arr, nullptr);
      EXPECT_EQ((get_element<std::int32_t>(arr, 1)), i + 1);
      head = get_ref_field(head, node_->field_named("next")->offset());
    }
    EXPECT_EQ(head, nullptr);
  }

  Vm vm_;
  ManagedThread thread_;
  const MethodTable* node_;
  const MethodTable* ints_;
};

class CliSerializerTest : public SerializerFixture {};

TEST_F(CliSerializerTest, RoundTripsLinkedList) {
  GcRoot list(thread_, make_list(10));
  CliBinarySerializer ser(vm_);
  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(list.get(), buf).is_ok());
  EXPECT_EQ(ser.objects_serialized(), 20u);  // 10 nodes + 10 arrays

  buf.seek(0);
  Obj copy = nullptr;
  ASSERT_TRUE(ser.deserialize(buf, thread_, &copy).is_ok());
  ASSERT_NE(copy, nullptr);
  EXPECT_NE(copy, list.get());
  verify_list(copy, 10);
}

TEST_F(CliSerializerTest, NullRootRoundTrips) {
  CliBinarySerializer ser(vm_);
  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(nullptr, buf).is_ok());
  buf.seek(0);
  Obj out = reinterpret_cast<Obj>(0x1);
  ASSERT_TRUE(ser.deserialize(buf, thread_, &out).is_ok());
  EXPECT_EQ(out, nullptr);
}

TEST_F(CliSerializerTest, SharedReferencesPreserved) {
  // Two nodes referencing the SAME array must deserialize to one shared
  // array, not two copies (the object-id table at work).
  GcRoot shared(thread_, vm_.heap().alloc_array(ints_, 2));
  set_element<std::int32_t>(shared.get(), 0, 77);
  GcRoot a(thread_, vm_.heap().alloc_object(node_));
  GcRoot b(thread_, vm_.heap().alloc_object(node_));
  const auto array_off = node_->field_named("array")->offset();
  const auto next_off = node_->field_named("next")->offset();
  set_ref_field(a.get(), array_off, shared.get());
  set_ref_field(b.get(), array_off, shared.get());
  set_ref_field(a.get(), next_off, b.get());

  CliBinarySerializer ser(vm_);
  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(a.get(), buf).is_ok());
  buf.seek(0);
  Obj copy = nullptr;
  ASSERT_TRUE(ser.deserialize(buf, thread_, &copy).is_ok());
  Obj copy_b = get_ref_field(copy, next_off);
  EXPECT_EQ(get_ref_field(copy, array_off), get_ref_field(copy_b, array_off));
}

TEST_F(CliSerializerTest, CyclesSurvive) {
  GcRoot a(thread_, vm_.heap().alloc_object(node_));
  GcRoot b(thread_, vm_.heap().alloc_object(node_));
  const auto next_off = node_->field_named("next")->offset();
  set_ref_field(a.get(), next_off, b.get());
  set_ref_field(b.get(), next_off, a.get());

  CliBinarySerializer ser(vm_);
  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(a.get(), buf).is_ok());
  buf.seek(0);
  Obj copy = nullptr;
  ASSERT_TRUE(ser.deserialize(buf, thread_, &copy).is_ok());
  Obj copy_b = get_ref_field(copy, next_off);
  EXPECT_EQ(get_ref_field(copy_b, next_off), copy);
}

TEST_F(CliSerializerTest, GarbageInputRejected) {
  CliBinarySerializer ser(vm_);
  ByteBuffer buf;
  buf.put_u32(0xBADBAD);
  buf.seek(0);
  Obj out = nullptr;
  EXPECT_EQ(ser.deserialize(buf, thread_, &out).code(),
            ErrorCode::kSerialization);
}

TEST_F(CliSerializerTest, CrossVmDeserialization) {
  // Serialize in one VM, deserialize in a second with the same type
  // definitions — the Figure 10 transport path between two ranks.
  GcRoot list(thread_, make_list(5));
  CliBinarySerializer ser(vm_);
  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(list.get(), buf).is_ok());

  Vm other(uncosted_config());
  ManagedThread other_thread(other);
  other.types()
      .define_class("LinkedArray")
      .ref_field("array", other.types().primitive_array(ElementKind::kInt32))
      .ref_field("next", other.types().object_type())
      .field("id", ElementKind::kInt32)
      .build();
  CliBinarySerializer other_ser(other);
  buf.seek(0);
  Obj copy = nullptr;
  ASSERT_TRUE(other_ser.deserialize(buf, other_thread, &copy).is_ok());
  ASSERT_NE(copy, nullptr);
  const MethodTable* other_node = other.types().find("LinkedArray");
  EXPECT_EQ(obj_mt(copy), other_node);
}

class JavaSerializerTest : public SerializerFixture {};

TEST_F(JavaSerializerTest, RoundTripsLinkedList) {
  GcRoot list(thread_, make_list(12));
  JavaSerializer ser(vm_);
  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(list.get(), buf).is_ok());
  buf.seek(0);
  Obj copy = nullptr;
  ASSERT_TRUE(ser.deserialize(buf, thread_, &copy).is_ok());
  verify_list(copy, 12);
}

TEST_F(JavaSerializerTest, SharedReferencesBecomeHandles) {
  GcRoot shared(thread_, vm_.heap().alloc_array(ints_, 4));
  GcRoot a(thread_, vm_.heap().alloc_object(node_));
  const auto array_off = node_->field_named("array")->offset();
  const auto next_off = node_->field_named("next")->offset();
  GcRoot b(thread_, vm_.heap().alloc_object(node_));
  set_ref_field(a.get(), array_off, shared.get());
  set_ref_field(b.get(), array_off, shared.get());
  set_ref_field(a.get(), next_off, b.get());

  JavaSerializer ser(vm_);
  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(a.get(), buf).is_ok());
  buf.seek(0);
  Obj copy = nullptr;
  ASSERT_TRUE(ser.deserialize(buf, thread_, &copy).is_ok());
  EXPECT_EQ(get_ref_field(copy, array_off),
            get_ref_field(get_ref_field(copy, next_off), array_off));
}

TEST_F(JavaSerializerTest, DeepListOverflowsLikeMpiJava) {
  // "longer linked lists caused a stack overflow exception in the Java
  // serialization mechanism" (Figure 10 caption). 512 elements (1024
  // objects) fits; 1024 elements (2048 objects) must fail.
  GcRoot ok_list(thread_, make_list(512));
  JavaSerializer ser(vm_);
  ByteBuffer buf;
  EXPECT_TRUE(ser.serialize(ok_list.get(), buf).is_ok());

  GcRoot deep_list(thread_, make_list(1024));
  ByteBuffer buf2;
  EXPECT_EQ(ser.serialize(deep_list.get(), buf2).code(),
            ErrorCode::kStackOverflow);
}

TEST_F(JavaSerializerTest, ClassDescriptorWrittenOncePerClass) {
  // Stream size should grow roughly linearly (per-object cost), not with
  // a full class descriptor per node.
  JavaSerializer ser(vm_);
  GcRoot small(thread_, make_list(4));
  GcRoot big(thread_, make_list(8));
  ByteBuffer buf_small, buf_big;
  ASSERT_TRUE(ser.serialize(small.get(), buf_small).is_ok());
  ASSERT_TRUE(ser.serialize(big.get(), buf_big).is_ok());
  const std::size_t per_node =
      (buf_big.size() - buf_small.size()) / 4;  // marginal node cost
  // A node record (tagged fields + handles + array of 3 ints) is well
  // under the class descriptor size; assert the marginal cost is small.
  EXPECT_LT(per_node, 120u);
}

TEST_F(JavaSerializerTest, HandleTableSwitchPreservesCorrectness) {
  // Cross the 512-entry switch threshold and verify the round trip.
  const int n = 400;  // 800 objects > threshold
  GcRoot list(thread_, make_list(n));
  JavaSerializer ser(vm_);
  ByteBuffer buf;
  ASSERT_TRUE(ser.serialize(list.get(), buf).is_ok());
  buf.seek(0);
  Obj copy = nullptr;
  ASSERT_TRUE(ser.deserialize(buf, thread_, &copy).is_ok());
  verify_list(copy, n);
}

TEST_F(JavaSerializerTest, FormatsAreDistinct) {
  // A Java stream must not be accepted by the CLI deserializer and vice
  // versa (magic mismatch).
  GcRoot list(thread_, make_list(2));
  JavaSerializer java(vm_);
  CliBinarySerializer cli(vm_);
  ByteBuffer jbuf, cbuf;
  ASSERT_TRUE(java.serialize(list.get(), jbuf).is_ok());
  ASSERT_TRUE(cli.serialize(list.get(), cbuf).is_ok());
  jbuf.seek(0);
  cbuf.seek(0);
  Obj out = nullptr;
  EXPECT_FALSE(cli.deserialize(jbuf, thread_, &out).is_ok());
  EXPECT_FALSE(java.deserialize(cbuf, thread_, &out).is_ok());
}

}  // namespace
}  // namespace motor::vm
