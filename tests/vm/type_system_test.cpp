#include "vm/type_system.hpp"

#include <gtest/gtest.h>

#include "common/status.hpp"

namespace motor::vm {
namespace {

TEST(TypeSystemTest, ObjectTypeExists) {
  TypeSystem ts;
  ASSERT_NE(ts.object_type(), nullptr);
  EXPECT_EQ(ts.object_type()->name(), "System.Object");
  EXPECT_EQ(ts.object_type()->instance_bytes(), 0u);
  EXPECT_FALSE(ts.object_type()->is_array());
}

TEST(TypeSystemTest, ClassBuilderAssignsAlignedOffsets) {
  TypeSystem ts;
  const MethodTable* mt = ts.define_class("Mixed")
                              .field("b", ElementKind::kUInt8)
                              .field("i", ElementKind::kInt32)
                              .field("d", ElementKind::kDouble)
                              .field("s", ElementKind::kInt16)
                              .build();
  EXPECT_EQ(mt->field_named("b")->offset(), 0u);
  EXPECT_EQ(mt->field_named("i")->offset(), 4u);   // aligned to 4
  EXPECT_EQ(mt->field_named("d")->offset(), 8u);   // aligned to 8
  EXPECT_EQ(mt->field_named("s")->offset(), 16u);
  EXPECT_EQ(mt->instance_bytes(), 24u);            // rounded to 8
}

TEST(TypeSystemTest, ReferenceFieldsTracked) {
  TypeSystem ts;
  const MethodTable* node = ts.define_class("Node")
                                .field("value", ElementKind::kInt32)
                                .ref_field("next", ts.object_type())
                                .build();
  EXPECT_TRUE(node->has_references());
  ASSERT_EQ(node->reference_offsets().size(), 1u);
  EXPECT_EQ(node->reference_offsets()[0], 8u);
  EXPECT_TRUE(node->field_named("next")->is_reference());
  EXPECT_FALSE(node->field_named("value")->is_reference());
}

TEST(TypeSystemTest, TransportableBitOnFieldDesc) {
  TypeSystem ts;
  const MethodTable* t = ts.define_class("Linked")
                             .ref_field("a", ts.object_type(), true)
                             .ref_field("b", ts.object_type(), false)
                             .build();
  EXPECT_TRUE(t->field_named("a")->is_transportable());
  EXPECT_FALSE(t->field_named("b")->is_transportable());
}

TEST(TypeSystemTest, TransportableAttributeMirroredInMetadata) {
  TypeSystem ts;
  ts.define_class("LinkedArray")
      .transportable()
      .ref_field("array", ts.object_type(), true)
      .ref_field("next", ts.object_type(), true)
      .ref_field("next2", ts.object_type(), false)
      .build();
  const MetadataRegistry& md = ts.metadata();
  EXPECT_TRUE(md.type_has_attribute("LinkedArray", "Transportable"));
  EXPECT_TRUE(md.field_has_attribute("LinkedArray", "array", "Transportable"));
  EXPECT_TRUE(md.field_has_attribute("LinkedArray", "next", "Transportable"));
  EXPECT_FALSE(md.field_has_attribute("LinkedArray", "next2", "Transportable"));
}

TEST(TypeSystemTest, PrimitiveArrayTypesAreCached) {
  TypeSystem ts;
  const MethodTable* a = ts.primitive_array(ElementKind::kInt32);
  const MethodTable* b = ts.primitive_array(ElementKind::kInt32);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a->is_array());
  EXPECT_EQ(a->rank(), 1);
  EXPECT_EQ(a->element_bytes(), 4u);
  EXPECT_NE(a, ts.primitive_array(ElementKind::kInt32, 2));
}

TEST(TypeSystemTest, RefArrayKnowsElementType) {
  TypeSystem ts;
  const MethodTable* node = ts.define_class("N").build();
  const MethodTable* arr = ts.ref_array(node);
  EXPECT_TRUE(arr->is_array());
  EXPECT_EQ(arr->element_kind(), ElementKind::kObjectRef);
  EXPECT_EQ(arr->element_type(), node);
  EXPECT_TRUE(arr->has_references());
}

TEST(TypeSystemTest, FindByNameAndById) {
  TypeSystem ts;
  const MethodTable* t = ts.define_class("Findable").build();
  EXPECT_EQ(ts.find("Findable"), t);
  EXPECT_EQ(ts.by_id(t->type_id()), t);
  EXPECT_EQ(ts.find("Missing"), nullptr);
}

TEST(TypeSystemTest, DuplicateNameFatals) {
  TypeSystem ts;
  ts.define_class("Dup").build();
  EXPECT_THROW(ts.define_class("Dup").build(), FatalError);
}

TEST(TypeSystemTest, ReflectionQueryAgreesWithFieldDescBit) {
  // The invariant the Motor serializer relies on: the fast FieldDesc bit
  // and the slow metadata path always agree.
  TypeSystem ts;
  const MethodTable* t = ts.define_class("Agree")
                             .field("x", ElementKind::kInt64, true)
                             .ref_field("y", ts.object_type(), false)
                             .ref_field("z", ts.object_type(), true)
                             .build();
  for (const FieldDesc& f : t->fields()) {
    EXPECT_EQ(f.is_transportable(),
              ts.metadata().field_has_attribute("Agree", f.name(),
                                                "Transportable"))
        << f.name();
  }
}

}  // namespace
}  // namespace motor::vm
